// Package topology generates gossip overlay networks — per-member
// neighbor sets that replace the paper's uniform-selection assumption.
//
// The paper (and all six related-work baselines) draw gossip targets
// uniformly at random from the full membership. Hu & Jehl ("Reliable
// Probabilistic Gossip over Large-Scale Random Topologies") show
// reliability depends strongly on the overlay, and Malkhi et al.
// ("Secure Multicast in a WAN") motivate hierarchical clusters with
// heterogeneous inter-zone latency. This package provides the overlay
// seam: a Spec names a topology family (k-out regular, Barabási–Albert
// scale-free, WAN clusters), Build materializes it as an Overlay that
// implements membership.View, and every layer that routes selection
// through View.SampleTargets — the uniform executor, the DES NetRun,
// and the protocol baselines — picks from the neighbor set instead.
//
// Determinism contract: overlays are generated from a non-consuming
// Split of the run RNG (see Split), so building one never perturbs the
// mask/fanout/latency streams — a run with Spec{} (uniform) is
// byte-identical to a run with no topology at all, and a fixed
// (topology, seed) pair yields the same overlay for any worker or
// shard count. SampleTargets is strictly read-only, so one Overlay is
// safe to share across concurrently sampling shard kernels; all
// mutation lives in Remove/Restore, which the scenario runner invokes
// only at window barriers.
package topology

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"gossipkit/internal/xrand"
)

// Split is the RNG split index overlays are generated from:
// Build-style call sites use r.Split(topology.Split), which derives an
// independent stream without advancing r. Distinct from the network
// (0xfeed), shard (0x5a7d00), SCAMP-view (0x71e75), and scenario-action
// (0x5ce9a810) split constants.
const Split = 0x7090

// Kind names a topology family.
type Kind int

const (
	// Uniform is the paper's assumption: targets drawn uniformly from
	// the full membership. The zero value, so Spec{} means "no overlay".
	Uniform Kind = iota
	// KOut gives every member k distinct out-neighbors drawn uniformly
	// (a random k-out regular digraph).
	KOut
	// ScaleFree grows a Barabási–Albert preferential-attachment graph:
	// each arriving member links to K existing members with probability
	// proportional to their degree. Undirected (arcs in both ways).
	ScaleFree
	// WAN partitions the membership into contiguous zones (clusters):
	// K-out within each zone plus one bridge arc per member into a
	// random other zone. Pair it with ZoneLatency for heterogeneous
	// inter-zone delays.
	WAN
)

func (k Kind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case KOut:
		return "kout"
	case ScaleFree:
		return "ba"
	case WAN:
		return "wan"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec declares a topology. The zero value is the uniform (full-view)
// topology. Spec is a plain value — safe to share across sweep workers;
// each run builds its own Overlay from its own RNG split.
type Spec struct {
	// Kind selects the family.
	Kind Kind `json:"kind"`
	// K is the per-member degree parameter: out-degree for KOut,
	// attachment count for ScaleFree, intra-zone out-degree for WAN.
	// 0 means ⌈log₂ n⌉, resolved at Build time.
	K int `json:"k,omitempty"`
	// Zones is the cluster count for WAN (≥ 2).
	Zones int `json:"zones,omitempty"`
}

// IsUniform reports whether s is the uniform (no-overlay) topology.
func (s Spec) IsUniform() bool { return s.Kind == Uniform }

// String renders s in the form Parse accepts.
func (s Spec) String() string {
	switch s.Kind {
	case Uniform:
		return "uniform"
	case KOut:
		if s.K == 0 {
			return "kout"
		}
		return fmt.Sprintf("kout:%d", s.K)
	case ScaleFree:
		if s.K == 0 {
			return "ba"
		}
		return fmt.Sprintf("ba:%d", s.K)
	case WAN:
		if s.K == 0 {
			return fmt.Sprintf("wan:%d", s.Zones)
		}
		return fmt.Sprintf("wan:%d:%d", s.Zones, s.K)
	default:
		return s.Kind.String()
	}
}

// Parse builds a Spec from untrusted input (CLI flags, config files):
//
//	uniform | kout[:K] | ba[:K] | wan:ZONES[:K]
//
// An omitted K means ⌈log₂ n⌉ at Build time.
func Parse(s string) (Spec, error) {
	parts := strings.Split(s, ":")
	bad := func() (Spec, error) {
		return Spec{}, fmt.Errorf("topology: cannot parse %q (want uniform, kout[:K], ba[:K], or wan:ZONES[:K])", s)
	}
	num := func(p string) (int, bool) {
		v, err := strconv.Atoi(p)
		return v, err == nil && v > 0
	}
	switch parts[0] {
	case "uniform", "":
		if len(parts) > 1 {
			return bad()
		}
		return Spec{}, nil
	case "kout", "ba":
		sp := Spec{Kind: KOut}
		if parts[0] == "ba" {
			sp.Kind = ScaleFree
		}
		if len(parts) == 1 {
			return sp, nil
		}
		if len(parts) != 2 {
			return bad()
		}
		k, ok := num(parts[1])
		if !ok {
			return bad()
		}
		sp.K = k
		return sp, nil
	case "wan":
		if len(parts) < 2 || len(parts) > 3 {
			return bad()
		}
		z, ok := num(parts[1])
		if !ok || z < 2 {
			return bad()
		}
		sp := Spec{Kind: WAN, Zones: z}
		if len(parts) == 3 {
			k, ok := num(parts[2])
			if !ok {
				return bad()
			}
			sp.K = k
		}
		return sp, nil
	default:
		return bad()
	}
}

// Validate checks s against a group of n members.
func (s Spec) Validate(n int) error {
	if s.K < 0 {
		return fmt.Errorf("topology: negative degree %d", s.K)
	}
	switch s.Kind {
	case Uniform:
		return nil
	case KOut, ScaleFree:
		return nil
	case WAN:
		if s.Zones < 2 {
			return fmt.Errorf("topology: wan needs >= 2 zones, got %d", s.Zones)
		}
		if s.Zones > n {
			return fmt.Errorf("topology: %d zones exceed group size %d", s.Zones, n)
		}
		return nil
	default:
		return fmt.Errorf("topology: unknown kind %v", s.Kind)
	}
}

// resolveK returns the effective degree parameter: K, or ⌈log₂ n⌉ when
// K is 0 (the classic connectivity threshold for random k-out graphs).
func (s Spec) resolveK(n int) int {
	if s.K > 0 {
		return s.K
	}
	if n < 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// Build materializes the overlay for n members, consuming randomness
// only from r. Callers pass a dedicated split of the run RNG
// (r.Split(topology.Split)) so generation never perturbs the run's own
// streams. Build returns nil for the uniform topology: the caller keeps
// the full-view path untouched, preserving byte-identical goldens.
func (s Spec) Build(n int, r *xrand.RNG) (*Overlay, error) {
	if err := s.Validate(n); err != nil {
		return nil, err
	}
	if s.Kind == Uniform {
		return nil, nil
	}
	if n < 2 {
		return nil, fmt.Errorf("topology: group size %d too small", n)
	}
	k := s.resolveK(n)
	switch s.Kind {
	case KOut:
		return generateKOut(n, k, r), nil
	case ScaleFree:
		return generateBarabasiAlbert(n, k, r), nil
	case WAN:
		return generateWAN(n, s.Zones, k, r), nil
	default:
		return nil, fmt.Errorf("topology: unknown kind %v", s.Kind)
	}
}
