package topology

import "gossipkit/internal/xrand"

// generateKOut builds a random k-out regular digraph: every member
// independently draws min(k, n−1) distinct out-neighbors uniformly,
// never itself. Out-degrees are exact; in-degrees are Binomial(n−1,
// k/(n−1)). At k ≥ ⌈log₂ n⌉ the digraph is strongly connected with high
// probability, which is why Spec.K==0 resolves there.
func generateKOut(n, k int, r *xrand.RNG) *Overlay {
	if k > n-1 {
		k = n - 1
	}
	adj := make([][]int32, n)
	buf := make([]int, 0, k)
	for u := 0; u < n; u++ {
		buf = r.SampleExcluding(buf[:0], n, k, u)
		nb := make([]int32, len(buf))
		for i, t := range buf {
			nb[i] = int32(t)
		}
		adj[u] = nb
	}
	return newOverlay(KOut, 0, adj)
}

// generateBarabasiAlbert grows a scale-free graph by preferential
// attachment: starting from a clique of m+1 seed members, each arriving
// member links to m distinct existing members chosen with probability
// proportional to degree (the classic repeated-endpoints trick: pick a
// uniform entry of the arc-endpoint multiset). Edges are undirected —
// each contributes an arc both ways — so early members accumulate high
// degree (hubs) and the degree distribution follows a power law.
func generateBarabasiAlbert(n, m int, r *xrand.RNG) *Overlay {
	if m > n-1 {
		m = n - 1
	}
	adj := make([][]int32, n)
	// ends holds one entry per arc endpoint; uniform picks from it are
	// degree-proportional.
	ends := make([]int32, 0, 2*(m*(m+1)/2+(n-m-1)*m))
	addEdge := func(u, v int) {
		adj[u] = append(adj[u], int32(v))
		adj[v] = append(adj[v], int32(u))
		ends = append(ends, int32(u), int32(v))
	}
	seed := m + 1
	for u := 1; u < seed; u++ {
		for v := 0; v < u; v++ {
			addEdge(u, v)
		}
	}
	chosen := make([]int32, 0, m)
	contains := func(s []int32, x int32) bool {
		for _, e := range s {
			if e == x {
				return true
			}
		}
		return false
	}
	for u := seed; u < n; u++ {
		chosen = chosen[:0]
		// Rejection-sample distinct degree-proportional targets; after
		// enough collisions (tiny graphs, adversarial m) fall back to the
		// lowest-index unchosen member so generation always terminates.
		for tries := 0; len(chosen) < m; tries++ {
			if tries < 16*m+16 {
				t := ends[r.Intn(len(ends))]
				if int(t) != u && !contains(chosen, t) {
					chosen = append(chosen, t)
				}
				continue
			}
			for t := int32(0); int(t) < u; t++ {
				if !contains(chosen, t) {
					chosen = append(chosen, t)
					break
				}
			}
		}
		for _, t := range chosen {
			addEdge(u, int(t))
		}
	}
	return newOverlay(ScaleFree, 0, adj)
}

// generateWAN builds a clustered WAN overlay: members are split into
// `zones` contiguous index ranges (zone z covers [z·n/Z, (z+1)·n/Z), the
// same layout scenario zone-crash actions and shard blocks use); each
// member draws min(k, zoneSize−1) distinct intra-zone out-neighbors plus
// one bridge arc to a uniformly random member of a uniformly random
// other zone. Intra-zone arcs keep clusters dense; one bridge per member
// keeps the zone digraph strongly connected in expectation while
// inter-zone traffic — the expensive, high-latency arcs under
// ZoneLatency — stays ~1/(k+1) of the total.
func generateWAN(n, zones, k int, r *xrand.RNG) *Overlay {
	adj := make([][]int32, n)
	buf := make([]int, 0, k)
	for u := 0; u < n; u++ {
		z := ((u+1)*zones - 1) / n
		lo, hi := z*n/zones, (z+1)*n/zones
		sz := hi - lo
		kz := k
		if kz > sz-1 {
			kz = sz - 1
		}
		nb := make([]int32, 0, kz+1)
		if kz > 0 {
			buf = r.SampleExcluding(buf[:0], sz, kz, u-lo)
			for _, t := range buf {
				nb = append(nb, int32(lo+t))
			}
		}
		// Bridge arc: a different zone, then a uniform member of it.
		oz := r.Intn(zones - 1)
		if oz >= z {
			oz++
		}
		blo, bhi := oz*n/zones, (oz+1)*n/zones
		nb = append(nb, int32(blo+r.Intn(bhi-blo)))
		adj[u] = nb
	}
	return newOverlay(WAN, zones, adj)
}
