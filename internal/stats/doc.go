// Package stats provides the statistical machinery used to validate the
// simulator against the analytic model: running moments, confidence
// intervals, histograms, the Binomial law (paper Eq. 5), chi-square
// goodness-of-fit with p-values, Kolmogorov–Smirnov distances, and series
// comparison metrics (RMSE/MAE) used in EXPERIMENTS.md.
//
// Determinism: all accumulators are plain value types fed in caller order;
// Running.Merge is used by the sweep runners to reduce per-worker
// accumulators in a fixed grid order, so aggregate statistics are identical
// for any worker count. Accumulation is allocation-free (Running and
// Histogram update in place); only report formatting allocates.
package stats
