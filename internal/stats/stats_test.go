package stats

import (
	"math"
	"testing"
	"testing/quick"

	"gossipkit/internal/xrand"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Variance() != 0 {
		t.Fatal("zero value not clean")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", r.Mean())
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if math.Abs(r.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %g, want %g", r.Variance(), 32.0/7)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max = %g/%g", r.Min(), r.Max())
	}
	if r.StdErr() <= 0 || r.CI95() <= r.StdErr() {
		t.Errorf("stderr %g, ci %g", r.StdErr(), r.CI95())
	}
}

func TestRunningSingleSample(t *testing.T) {
	var r Running
	r.Add(3.5)
	if r.Variance() != 0 || r.Mean() != 3.5 || r.Min() != 3.5 || r.Max() != 3.5 {
		t.Error("single-sample stats wrong")
	}
}

func TestRunningMergeEqualsSequential(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 3 {
			return true
		}
		var all, left, right Running
		split := len(raw) / 2
		for i, v := range raw {
			x := float64(v)/100 - 300
			all.Add(x)
			if i < split {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		left.Merge(right)
		return left.N() == all.N() &&
			math.Abs(left.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(left.Variance()-all.Variance()) < 1e-6*(1+all.Variance()) &&
			left.Min() == all.Min() && left.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(2)
	saved := a
	a.Merge(b) // empty other: no-op
	if a != saved {
		t.Error("merging empty changed accumulator")
	}
	b.Merge(a) // empty receiver: copy
	if b.N() != 2 || b.Mean() != 1.5 {
		t.Error("merge into empty failed")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(5)
	for _, k := range []int{0, 1, 1, 2, 7, -3} { // 7 and -3 clamp
		h.Add(k)
	}
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Count(1) != 2 || h.Count(4) != 1 || h.Count(0) != 2 {
		t.Errorf("counts wrong: %v", h.Freqs())
	}
	if math.Abs(h.Freq(1)-2.0/6) > 1e-12 {
		t.Errorf("freq(1) = %g", h.Freq(1))
	}
	if h.Count(99) != 0 || h.Count(-1) != 0 {
		t.Error("out-of-range Count must be 0")
	}
	if h.Bins() != 5 {
		t.Errorf("bins = %d", h.Bins())
	}
}

func TestHistogramInvalidBins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHistogram(0)
}

func TestBinomialPMFKnownValues(t *testing.T) {
	// B(5, 0.5): symmetric, PMF(2) = 10/32.
	if got := BinomialPMF(5, 2, 0.5); math.Abs(got-10.0/32) > 1e-12 {
		t.Errorf("PMF(5,2,0.5) = %g", got)
	}
	if got := BinomialPMF(5, 0, 0.5); math.Abs(got-1.0/32) > 1e-12 {
		t.Errorf("PMF(5,0,0.5) = %g", got)
	}
	// Edge parameters.
	if BinomialPMF(4, 0, 0) != 1 || BinomialPMF(4, 4, 1) != 1 {
		t.Error("degenerate PMFs wrong")
	}
	if BinomialPMF(4, -1, 0.5) != 0 || BinomialPMF(4, 5, 0.5) != 0 {
		t.Error("out-of-support PMFs must be 0")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	f := func(nRaw uint8, pRaw uint16) bool {
		n := int(nRaw%50) + 1
		p := float64(pRaw%1001) / 1000
		var sum float64
		for k := 0; k <= n; k++ {
			sum += BinomialPMF(n, k, p)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBinomialCDF(t *testing.T) {
	if got := BinomialCDF(5, 2, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(5,2,0.5) = %g, want 0.5", got)
	}
	if BinomialCDF(5, -1, 0.5) != 0 || BinomialCDF(5, 5, 0.5) != 1 || BinomialCDF(5, 9, 0.5) != 1 {
		t.Error("CDF boundaries wrong")
	}
}

func TestBinomialPMFsVector(t *testing.T) {
	v := BinomialPMFs(20, 0.967)
	if len(v) != 21 {
		t.Fatalf("len = %d", len(v))
	}
	var sum float64
	for _, p := range v {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("mass = %g", sum)
	}
	// Mode at k=20 for p=0.967 (paper Figs. 6-7 shape: spike at 20).
	best := 0
	for k, p := range v {
		if p > v[best] {
			best = k
		}
	}
	if best != 20 {
		t.Errorf("mode at %d, want 20", best)
	}
}

func TestAtLeastOne(t *testing.T) {
	// Eq. 5: Pr = 1 - (1-p)^t.
	if got := AtLeastOne(0.5, 2); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("AtLeastOne(0.5,2) = %g", got)
	}
	if AtLeastOne(0, 10) != 0 || AtLeastOne(1, 1) != 1 || AtLeastOne(0.3, 0) != 0 {
		t.Error("edge cases wrong")
	}
	// High-precision regime: tiny p, many trials. The naive 1-(1-p)^t
	// loses digits; compare against the binomial series
	// t·p − C(t,2)·p² (higher terms < 1e-18).
	got := AtLeastOne(1e-9, 1000)
	want := 1000*1e-9 - (1000*999.0/2)*1e-18
	if math.Abs(got-want) > 1e-16 {
		t.Errorf("precision: %g vs %g", got, want)
	}
}

func TestMinTrialsPaperValues(t *testing.T) {
	// Paper §5.2: ps=0.999, pr=0.967 → t >= lg(0.001)/lg(0.033) ≈ 2.03,
	// so t = 3 per the paper's statement "t should be greater than three"
	// — the exact ceiling is 3 (2.0255... → 3? ceil(2.03) = 3). Verify
	// ceiling arithmetic directly.
	tmin, err := MinTrials(0.999, 0.967)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(math.Log(1-0.999) / math.Log(1-0.967)))
	if tmin != want {
		t.Errorf("MinTrials = %d, want %d", tmin, want)
	}
	if tmin != 3 {
		t.Errorf("MinTrials(0.999, 0.967) = %d, paper says 3", tmin)
	}
}

func TestMinTrialsSatisfiesTarget(t *testing.T) {
	f := func(psRaw, prRaw uint16) bool {
		ps := 0.5 + float64(psRaw%499)/1000 // 0.5 .. 0.998
		pr := 0.01 + float64(prRaw%990)/1000
		tmin, err := MinTrials(ps, pr)
		if err != nil {
			return false
		}
		// t_min achieves the target, t_min - 1 does not.
		if AtLeastOne(pr, tmin) < ps-1e-12 {
			return false
		}
		if tmin > 1 && AtLeastOne(pr, tmin-1) >= ps {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMinTrialsErrors(t *testing.T) {
	for _, c := range []struct{ ps, pr float64 }{
		{0, 0.5}, {1, 0.5}, {0.9, 0}, {0.9, -1}, {0.9, 1.5},
	} {
		if _, err := MinTrials(c.ps, c.pr); err == nil {
			t.Errorf("MinTrials(%g, %g) accepted", c.ps, c.pr)
		}
	}
	if tmin, err := MinTrials(0.999, 1); err != nil || tmin != 1 {
		t.Errorf("MinTrials(_, 1) = %d, %v", tmin, err)
	}
}

func TestChiSquareSFKnownValues(t *testing.T) {
	// Known chi-square critical values: P[X > 3.841] = 0.05 for k=1;
	// P[X > 5.991] = 0.05 for k=2; P[X > 18.307] = 0.05 for k=10.
	cases := []struct {
		x    float64
		k    int
		want float64
	}{
		{3.841, 1, 0.05},
		{5.991, 2, 0.05},
		{18.307, 10, 0.05},
		{6.635, 1, 0.01},
		{23.209, 10, 0.01},
	}
	for _, c := range cases {
		if got := ChiSquareSF(c.x, c.k); math.Abs(got-c.want) > 5e-4 {
			t.Errorf("SF(%g, %d) = %.5f, want %.2f", c.x, c.k, got, c.want)
		}
	}
	if ChiSquareSF(0, 3) != 1 || ChiSquareSF(-1, 3) != 1 {
		t.Error("SF at non-positive x must be 1")
	}
}

func TestChiSquareGOFAcceptsTrueModel(t *testing.T) {
	// Sample from B(20, 0.7) and test against its own PMF: p-value should
	// rarely be tiny.
	r := xrand.New(99)
	n, p := 20, 0.7
	pmf := BinomialPMFs(n, p)
	obs := make([]int64, n+1)
	const draws = 20000
	for i := 0; i < draws; i++ {
		k := 0
		for j := 0; j < n; j++ {
			if r.Float64() < p {
				k++
			}
		}
		obs[k]++
	}
	stat, dof, pv, err := ChiSquare(obs, pmf, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dof < 3 {
		t.Errorf("dof = %d, pooling too aggressive", dof)
	}
	if pv < 0.001 {
		t.Errorf("true model rejected: stat=%.2f dof=%d p=%.5f", stat, dof, pv)
	}
}

func TestChiSquareGOFRejectsWrongModel(t *testing.T) {
	// Sample from B(20, 0.5), test against B(20, 0.7): must reject hard.
	r := xrand.New(7)
	obs := make([]int64, 21)
	for i := 0; i < 20000; i++ {
		k := 0
		for j := 0; j < 20; j++ {
			if r.Float64() < 0.5 {
				k++
			}
		}
		obs[k]++
	}
	_, _, pv, err := ChiSquare(obs, BinomialPMFs(20, 0.7), 5)
	if err != nil {
		t.Fatal(err)
	}
	if pv > 1e-6 {
		t.Errorf("wrong model not rejected: p = %g", pv)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, _, err := ChiSquare([]int64{1, 2}, []float64{1}, 5); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, _, err := ChiSquare([]int64{0, 0}, []float64{0.5, 0.5}, 5); err == nil {
		t.Error("empty observations accepted")
	}
	if _, _, _, err := ChiSquare([]int64{-1, 2}, []float64{0.5, 0.5}, 5); err == nil {
		t.Error("negative count accepted")
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	// Perfect match: D = 0.
	obs := []int64{25, 25, 25, 25}
	ref := []float64{0.25, 0.25, 0.25, 0.25}
	d, err := KolmogorovSmirnov(obs, ref)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-12 {
		t.Errorf("D = %g, want 0", d)
	}
	// Total mismatch: all mass at 0 vs all at end.
	d, err = KolmogorovSmirnov([]int64{100, 0, 0}, []float64{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-12 {
		t.Errorf("D = %g, want 1", d)
	}
	if _, err := KolmogorovSmirnov([]int64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSeriesMetrics(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 5}
	r, err := RMSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-math.Sqrt(4.0/3)) > 1e-12 {
		t.Errorf("RMSE = %g", r)
	}
	m, err := MAE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-2.0/3) > 1e-12 {
		t.Errorf("MAE = %g", m)
	}
	mx, err := MaxAbsErr(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if mx != 2 {
		t.Errorf("MaxAbsErr = %g", mx)
	}
	for _, f := range []func([]float64, []float64) (float64, error){RMSE, MAE, MaxAbsErr} {
		if _, err := f(a, []float64{1}); err == nil {
			t.Error("length mismatch accepted")
		}
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Error("empty RMSE accepted")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	for _, c := range []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {1, 5}, {0.125, 1.5},
	} {
		got, err := Quantile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Q(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	// Input must not be mutated (sorted copy).
	if xs[0] != 3 {
		t.Error("Quantile mutated input")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("p > 1 accepted")
	}
}

func BenchmarkRunningAdd(b *testing.B) {
	var r Running
	for i := 0; i < b.N; i++ {
		r.Add(float64(i % 1000))
	}
}

func BenchmarkBinomialPMFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = BinomialPMFs(20, 0.967)
	}
}

func BenchmarkChiSquare(b *testing.B) {
	obs := make([]int64, 21)
	for i := range obs {
		obs[i] = int64(i * 10)
	}
	pmf := BinomialPMFs(20, 0.7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := ChiSquare(obs, pmf, 5); err != nil {
			b.Fatal(err)
		}
	}
}
