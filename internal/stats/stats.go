package stats

import (
	"fmt"
	"math"
	"sort"
)

// ---------------------------------------------------------------------------
// Running moments

// Running accumulates streaming mean and variance using Welford's algorithm.
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 for no samples).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// samples).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest sample (0 for no samples).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample (0 for no samples).
func (r *Running) Max() float64 { return r.max }

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// CI95 returns the half-width of a ~95% normal-approximation confidence
// interval on the mean.
func (r *Running) CI95() float64 { return 1.96 * r.StdErr() }

// Merge combines another accumulator into r (parallel reduction).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := float64(r.n + o.n)
	d := o.mean - r.mean
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/n
	r.mean += d * float64(o.n) / n
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n += o.n
}

// ---------------------------------------------------------------------------
// Histogram

// Histogram counts integer-valued observations in [0, Bins).
type Histogram struct {
	counts []int64
	total  int64
}

// NewHistogram returns a histogram over {0..bins-1}.
func NewHistogram(bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: invalid bin count %d", bins))
	}
	return &Histogram{counts: make([]int64, bins)}
}

// Add counts one observation of value k; out-of-range values clamp to the
// nearest bin.
func (h *Histogram) Add(k int) {
	if k < 0 {
		k = 0
	}
	if k >= len(h.counts) {
		k = len(h.counts) - 1
	}
	h.counts[k]++
	h.total++
}

// Reset zeroes the counts in place, keeping the bin layout, so pooled
// consumers (the observability probes) reuse one histogram across runs.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
}

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int64 {
	return append([]int64(nil), h.counts...)
}

// Count returns the count in bin k.
func (h *Histogram) Count(k int) int64 {
	if k < 0 || k >= len(h.counts) {
		return 0
	}
	return h.counts[k]
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Freq returns the empirical frequency of bin k.
func (h *Histogram) Freq(k int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(k)) / float64(h.total)
}

// Freqs returns all bin frequencies.
func (h *Histogram) Freqs() []float64 {
	out := make([]float64, len(h.counts))
	for i := range out {
		out[i] = h.Freq(i)
	}
	return out
}

// ---------------------------------------------------------------------------
// Binomial law (paper Eq. 5)

// BinomialPMF returns Pr[X = k] for X ~ B(n, p), computed in log space.
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n || n < 0 {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	ln, _ := math.Lgamma(float64(n) + 1)
	lk, _ := math.Lgamma(float64(k) + 1)
	lnk, _ := math.Lgamma(float64(n-k) + 1)
	return math.Exp(ln - lk - lnk + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p))
}

// BinomialCDF returns Pr[X <= k] for X ~ B(n, p).
func BinomialCDF(n, k int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	sum := 0.0
	for i := 0; i <= k; i++ {
		sum += BinomialPMF(n, i, p)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// BinomialPMFs returns the full PMF vector of B(n, p) over {0..n}.
func BinomialPMFs(n int, p float64) []float64 {
	out := make([]float64, n+1)
	for k := range out {
		out[k] = BinomialPMF(n, k, p)
	}
	return out
}

// AtLeastOne returns 1 - (1-p)^t: the probability that at least one of t
// independent trials with success probability p succeeds (paper Eq. 5).
func AtLeastOne(p float64, t int) float64 {
	if t <= 0 {
		return 0
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	return -math.Expm1(float64(t) * math.Log1p(-p))
}

// MinTrials returns the smallest t with 1 - (1-pr)^t >= ps: the paper's
// Eq. 6, t >= lg(1-ps)/lg(1-pr). It returns an error when the target is
// unreachable (pr <= 0) or the inputs are not probabilities.
func MinTrials(ps, pr float64) (int, error) {
	if !(ps > 0 && ps < 1) {
		return 0, fmt.Errorf("stats: success target %g outside (0,1)", ps)
	}
	if !(pr > 0 && pr <= 1) {
		return 0, fmt.Errorf("stats: per-trial reliability %g outside (0,1]", pr)
	}
	if pr == 1 {
		return 1, nil
	}
	t := math.Log1p(-ps) / math.Log1p(-pr)
	n := int(math.Ceil(t - 1e-12))
	if n < 1 {
		n = 1
	}
	return n, nil
}

// ---------------------------------------------------------------------------
// Goodness of fit

// ChiSquare compares observed counts with expected probabilities and returns
// the chi-square statistic, the degrees of freedom, and the p-value.
// Bins with expected count below minExpected (commonly 5) are pooled into
// their neighbor to keep the asymptotic distribution valid.
func ChiSquare(observed []int64, expectedProb []float64, minExpected float64) (stat float64, dof int, p float64, err error) {
	if len(observed) != len(expectedProb) {
		return 0, 0, 0, fmt.Errorf("stats: length mismatch %d vs %d", len(observed), len(expectedProb))
	}
	var total int64
	for _, o := range observed {
		if o < 0 {
			return 0, 0, 0, fmt.Errorf("stats: negative observed count")
		}
		total += o
	}
	if total == 0 {
		return 0, 0, 0, fmt.Errorf("stats: no observations")
	}
	if minExpected <= 0 {
		minExpected = 5
	}
	// Pool adjacent bins until every pooled bin has sufficient expected
	// mass.
	type bin struct {
		obs float64
		exp float64
	}
	var bins []bin
	var accO, accE float64
	for i := range observed {
		accO += float64(observed[i])
		accE += expectedProb[i] * float64(total)
		if accE >= minExpected {
			bins = append(bins, bin{accO, accE})
			accO, accE = 0, 0
		}
	}
	if accE > 0 || accO > 0 {
		if len(bins) > 0 {
			bins[len(bins)-1].obs += accO
			bins[len(bins)-1].exp += accE
		} else {
			bins = append(bins, bin{accO, accE})
		}
	}
	if len(bins) < 2 {
		return 0, 0, 1, nil // everything pooled into one bin: trivially consistent
	}
	for _, b := range bins {
		if b.exp <= 0 {
			return 0, 0, 0, fmt.Errorf("stats: zero expected mass in pooled bin")
		}
		d := b.obs - b.exp
		stat += d * d / b.exp
	}
	dof = len(bins) - 1
	p = ChiSquareSF(stat, dof)
	return stat, dof, p, nil
}

// ChiSquareSF returns the survival function Pr[X > x] for a chi-square
// distribution with k degrees of freedom, via the regularized upper
// incomplete gamma function Q(k/2, x/2).
func ChiSquareSF(x float64, k int) float64 {
	if x <= 0 {
		return 1
	}
	return regIncGammaQ(float64(k)/2, x/2)
}

// regIncGammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = Γ(a, x)/Γ(a) using the series expansion for x < a+1 and the
// continued fraction otherwise (Numerical Recipes style).
func regIncGammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - regIncGammaPSeries(a, x)
	}
	return regIncGammaQCF(a, x)
}

func regIncGammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func regIncGammaQCF(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// KolmogorovSmirnov returns the KS statistic (sup distance between CDFs)
// between an empirical histogram over {0..n} and a reference PMF over the
// same support.
func KolmogorovSmirnov(observed []int64, refPMF []float64) (float64, error) {
	if len(observed) != len(refPMF) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(observed), len(refPMF))
	}
	var total int64
	for _, o := range observed {
		total += o
	}
	if total == 0 {
		return 0, fmt.Errorf("stats: no observations")
	}
	var d, cdfEmp, cdfRef float64
	for i := range observed {
		cdfEmp += float64(observed[i]) / float64(total)
		cdfRef += refPMF[i]
		if g := math.Abs(cdfEmp - cdfRef); g > d {
			d = g
		}
	}
	return d, nil
}

// ---------------------------------------------------------------------------
// Series comparison

// RMSE returns the root-mean-square error between two equal-length series.
func RMSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("stats: empty series")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a))), nil
}

// MAE returns the mean absolute error between two equal-length series.
func MAE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("stats: empty series")
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a)), nil
}

// MaxAbsErr returns the maximum absolute difference between two series.
func MaxAbsErr(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(a), len(b))
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation on the sorted copy.
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: empty sample")
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: quantile %g outside [0,1]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}
