package stream

import (
	"fmt"

	"gossipkit/internal/core"
	"gossipkit/internal/membership"
	"gossipkit/internal/obs"
	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
	"gossipkit/internal/xrand"
)

// RunSharded executes one streaming run on the conservative-PDES sharded
// runtime: members partitioned into contiguous blocks across per-core
// shard kernels, lookahead windows from the latency model's floor,
// cross-shard messages crossing at window barriers. RunProbed is the
// equivalence oracle.
//
// Determinism contract (matching the core executors):
//   - shards=1: byte-identical to RunProbed for the same inputs — same
//     RNG layout, same event interleaving (the control kernel is the
//     shard kernel and the run is a plain drain).
//   - fixed shards>1: byte-identical across repeated runs and hosts.
//   - across shard counts: statistically pinned — the publish schedule
//     and failure mask are identical (both from non-consuming splits or
//     from r before any shard stream is used), but fanout and latency
//     draws come from per-shard streams.
//
// The probe fans out to per-shard children and adopts their merged
// telemetry; the active-message gauge lives on shard 0. opts.Shards
// below 1 auto-selects GOMAXPROCS; configurations without a positive
// latency floor fall back to one shard.
func RunSharded(cfg Config, netCfg simnet.Config, r *xrand.RNG,
	inject func(*core.NetRun), arena *Arena, probe *obs.StreamProbe, opts core.ShardOptions) (Result, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return Result{}, err
	}
	if arena == nil {
		arena = NewArena()
	}
	shards := core.EffectiveShards(opts.Shards, cfg.N, netCfg)
	sh := arena.schedule(cfg, cfg.interval(netCfg), r)
	sa := arena.net.Sharded(shards)
	ss := sa.LeaseSharded(shards)
	kernels, ctl, sn := ss.Kernels, ss.Control, ss.Net
	group := sim.NewShardGroup(kernels, ctl, core.LatencyFloor(netCfg.Latency))
	block := (cfg.N + shards - 1) / shards

	// RNG layout: worker streams split off r (never advancing it), so
	// the mask draw below is shard-count independent; with one shard the
	// worker stream is r itself, anchoring the RunProbed equivalence.
	workers := make([]*worker, shards)
	for s := range workers {
		workers[s] = arena.worker(s) // leased here; reset on the shard goroutine
	}
	rngs := make([]*xrand.RNG, shards)
	if shards == 1 {
		rngs[0] = r
	} else {
		for s := range rngs {
			rngs[s] = r.Split(shardSplit + uint64(s))
		}
	}
	pubBy := arena.publishLists(sh, shards, block)
	sn.Prepare(shards, cfg.N, netCfg)
	bud := budget(cfg, sh)
	group.Each(func(s int) {
		// Per-shard state resets on the shard's own goroutine
		// (first-touch locality of the kernel queue, network pools,
		// delivery matrix and rumor buffers).
		kernels[s].Reset()
		kernels[s].SetBudget(bud)
		sn.ResetShard(s, kernels[s], rngs[s].Split(netSplit))
		lo, hi := s*block, min((s+1)*block, cfg.N)
		var pend *core.MessageBits
		if cfg.Discipline == DisciplinePushPull {
			pend = sa.ShardNackBits(s, sh.M, hi-lo)
		}
		workers[s].reset(s, lo, hi, sn.Shard(s), rngs[s], sh,
			sa.ShardMessageBits(s, sh.M, hi-lo), pend, nil, pubBy[s])
	})
	if shards > 1 {
		ctl.Reset()
	}
	sh.mask = ss.Mask
	sh.mask.FillBernoulli(cfg.N, cfg.AliveRatio, 0, r)
	sh.view = cfg.View
	if sh.view == nil {
		sh.view = membership.NewFullView(cfg.N)
	}

	if probe != nil {
		if shards == 1 {
			workers[0].probe = probe
			probe.Attach(sn.Shard(0), &workers[0].occ, &workers[0].act)
		} else {
			for s, child := range probe.ShardProbes(shards) {
				workers[s].probe = child
				var act *int64
				if s == 0 {
					act = &workers[0].act
				}
				child.Attach(sn.Shard(s), &workers[s].occ, act)
			}
		}
	}

	for s := 0; s < shards; s++ {
		w := workers[s]
		sn.Shard(s).RegisterAll(func(now sim.Time, msg simnet.Message) { w.onMessage(now, msg) })
		sn.Shard(s).RegisterBatchAll(func(now sim.Time, from, to simnet.NodeID, kind int32, ids []int32) {
			w.onBatch(now, from, to, kind, ids)
		})
	}
	group.Each(func(s int) {
		for id := s * block; id < min((s+1)*block, cfg.N); id++ {
			if !sh.mask.Alive(id) {
				sn.Shard(s).Crash(simnet.NodeID(id))
			}
		}
		workers[s].armPublishes(kernels[s])
		workers[s].installTick(kernels[s])
	})

	if inject != nil {
		inject(core.NewNetRunFuncs(ctl, sn, sh.view, sh.mask,
			func(id int) bool { return hasReceivedLatest(sh, workers, cfg.N, id, ctl.Now()) },
			func() int {
				total := 0
				for _, w := range workers {
					total += w.firstTotal
				}
				return total
			},
			func() int {
				n := ctl.Pending() + sn.Buffered()
				if shards > 1 {
					for _, k := range kernels {
						n += k.Pending()
					}
				}
				return n
			},
			func(id int) {
				if id < 0 || id >= cfg.N {
					return
				}
				// Latest is resolved at the barrier (workers parked);
				// the publish itself executes on the owning shard's
				// clock.
				latest := latestPublished(sh, ctl.Now())
				s := id / block
				now := ctl.Now()
				if shards == 1 {
					workers[0].scenarioPublish(id, latest, now)
					return
				}
				kernels[s].At(now, func() { workers[s].scenarioPublish(id, latest, now) })
			}))
	}

	var runErr error
	if shards == 1 {
		runErr = ctl.RunAll()
	} else {
		var onBarrier func(now sim.Time, fired uint64)
		if opts.Progress != nil {
			onBarrier = func(now sim.Time, fired uint64) { opts.Progress(fired, now) }
		}
		runErr = group.Run(sn.Flush, sn.Buffered, onBarrier)
	}
	if runErr != nil {
		return Result{}, fmt.Errorf("stream: sharded execution aborted: %w", runErr)
	}
	if probe != nil {
		if shards == 1 {
			probe.Finish(ctl.Now())
		} else {
			for s := range workers {
				workers[s].probe.Finish(kernels[s].Now())
			}
			probe.AdoptShards()
		}
	}
	end := ctl.Now()
	for _, k := range kernels {
		if k.Now() > end {
			end = k.Now()
		}
	}
	return reduce(cfg, sh, workers, sn.Stats(), end), nil
}
