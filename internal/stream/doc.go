// Package stream is the steady-state multi-message workload engine: an
// open-loop Poisson publish stream — many sources, an aggregate offered
// rate — driven through the DES substrate, where each message is an
// independent rumor identified by its simnet tag and every member holds a
// bounded rumor buffer with a pluggable eviction policy. It generalizes
// the single-rumor executors in internal/core and internal/protocols to
// the regime the paper's reliability model is silent about: sustained
// load, finite buffers, and the saturation knee where eviction loss
// overtakes network loss.
//
// A run precomputes its publish schedule (Poisson inter-arrivals over the
// configured rate, uniformly drawn sources) from a non-consuming split of
// the run RNG, so the offered load is identical across shard counts. Four
// gossip disciplines map the repo's protocol families onto the buffer
// model — eager push at first receipt (the paper's algorithm), round-based
// buffer push (pbcast/lpbcast), round-based digest push-pull with NACK
// and repair (anti-entropy/RDG), and full-view flooding (flooding/LRG) —
// all gossiping their active buffer instead of one rumor. Buffered
// entries age out after a fixed number of round-interval ticks; capacity
// pressure evicts per the configured policy, and the run's ledger
// reconciles publishes, deliveries, evictions and drops exactly.
//
// Run executes on a single kernel; RunSharded on the conservative-PDES
// sharded runtime with the same determinism contract as the core
// executors: byte-identical for a fixed shard count (shards=1 equals the
// single kernel), statistically pinned across shard counts. Telemetry
// rides the obs.StreamProbe family (nil probe = zero overhead), and
// scenario campaigns inject through the same core.NetRun seam as every
// other execution.
package stream
