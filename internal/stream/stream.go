package stream

import (
	"errors"
	"fmt"
	"time"

	"gossipkit/internal/dist"
	"gossipkit/internal/membership"
	"gossipkit/internal/simnet"
	"gossipkit/internal/stats"
)

// RNG split indices on the run's root stream. Splitting never advances
// the parent, so the publish schedule and the failure mask are identical
// across every shard count. The constants collide with no other split
// index in the tree (0xfeed is the network stream, by convention shared
// with the core executors; the shard split differs from core's on
// purpose — the streams are unrelated).
const (
	publishSplit = 0x97ab31 // publish schedule (times + sources)
	netSplit     = 0xfeed   // network latency/loss stream
	shardSplit   = 0x57ea17 // per-shard run streams (shard s: +s)
)

// Message tags pack (message id, message kind) into the simnet tag word:
// tag = id<<kindBits | kind. Ids at or above simnet's packed-tag band box
// into pooled in-flight slots (see simnet.SendTag and Stats.BoxedSends) —
// same semantics, zero steady-state allocations — which is the normal
// regime for a stream of thousands of messages.
const (
	kindBits = 2
	kindMask = 1<<kindBits - 1

	kindData   int32 = 0 // a copy of the message itself
	kindDigest int32 = 1 // "I buffer this id" (push-pull rounds)
	kindNack   int32 = 2 // "send me this id" (digest response)
	kindRepair int32 = 3 // the pull reply; received like data

	// MaxMessagesCap bounds a run's message count so every id fits the
	// tag word with room for the kind bits.
	MaxMessagesCap = 1 << 27
)

func tagOf(m, kind int32) int32 { return m<<kindBits | kind }

// EvictionPolicy selects the victim when a full buffer admits a new
// message.
type EvictionPolicy int

const (
	// EvictFIFO drops the longest-buffered entry (insertion order).
	EvictFIFO EvictionPolicy = iota
	// EvictRandom drops a uniformly random entry.
	EvictRandom
	// EvictAge drops the entry whose message was published earliest
	// (ties: insertion order) — the oldest news is the most likely to
	// have spread already.
	EvictAge
	// EvictLpbcast drops the entry seen most often as a duplicate
	// (ties: earliest publish, then insertion order) — lpbcast's
	// frequency-based purging, where high duplicate counts signal a
	// message the neighborhood already holds.
	EvictLpbcast
)

// String names the policy for labels and CSV columns.
func (p EvictionPolicy) String() string {
	switch p {
	case EvictFIFO:
		return "fifo"
	case EvictRandom:
		return "random"
	case EvictAge:
		return "age"
	case EvictLpbcast:
		return "lpbcast"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParseEviction resolves an eviction-policy name ("fifo", "random",
// "age", "lpbcast") from untrusted input.
func ParseEviction(s string) (EvictionPolicy, error) {
	for _, p := range []EvictionPolicy{EvictFIFO, EvictRandom, EvictAge, EvictLpbcast} {
		if s == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("stream: unknown eviction policy %q (want fifo, random, age, or lpbcast)", s)
}

// Discipline selects how buffered messages propagate — the load-phase
// generalization of the repo's protocol families, each gossiping its
// active buffer instead of one rumor.
type Discipline int

const (
	// DisciplineEager forwards each message fanout-wise at first receipt,
	// event-driven — the paper's general gossiping algorithm per message.
	DisciplineEager Discipline = iota
	// DisciplinePush gossips the whole active buffer to a fresh fanout
	// draw of targets every round tick — the pbcast/lpbcast family.
	DisciplinePush
	// DisciplinePushPull gossips per-entry digests every round; a
	// receiver lacking a still-active id NACKs, and a holder still
	// buffering it answers with a repair — the anti-entropy/RDG family.
	DisciplinePushPull
	// DisciplineFlood forwards each message to the full view at first
	// receipt — the flooding/LRG family.
	DisciplineFlood
)

// String names the discipline for labels and CSV columns.
func (d Discipline) String() string {
	switch d {
	case DisciplineEager:
		return "eager"
	case DisciplinePush:
		return "push"
	case DisciplinePushPull:
		return "pushpull"
	case DisciplineFlood:
		return "flood"
	}
	return fmt.Sprintf("discipline(%d)", int(d))
}

// ParseDiscipline resolves a discipline name ("eager", "push",
// "pushpull", "flood") from untrusted input.
func ParseDiscipline(s string) (Discipline, error) {
	for _, d := range []Discipline{DisciplineEager, DisciplinePush, DisciplinePushPull, DisciplineFlood} {
		if s == d.String() {
			return d, nil
		}
	}
	return 0, fmt.Errorf("stream: unknown discipline %q (want eager, push, pushpull, or flood)", s)
}

// Config parameterizes one streaming run.
type Config struct {
	// N is the group size.
	N int
	// Rate is the aggregate offered load in messages per second across
	// all sources (Poisson arrivals, open loop: publishes do not wait for
	// earlier messages to spread).
	Rate float64
	// Duration is the publish window; the run itself continues until the
	// last buffered copies age out and the network drains.
	Duration time.Duration
	// MaxMessages caps the schedule regardless of Rate·Duration; zero
	// defaults to 4096 (capped at MaxMessagesCap).
	MaxMessages int
	// Sources is the number of distinct publishers — each message's
	// source is drawn uniformly from members [0, Sources). Zero means
	// every member publishes.
	Sources int
	// Fanout is the per-emission fanout distribution (required).
	Fanout dist.Distribution
	// AliveRatio is the paper's q: each member is independently alive
	// with probability q under the initial failure mask (member 0
	// protected, mirroring the single-rumor executors). Zero means 1.
	AliveRatio float64
	// BufferCap is the per-member rumor buffer capacity; zero defaults
	// to 32.
	BufferCap int
	// Eviction selects the buffer eviction policy.
	Eviction EvictionPolicy
	// Discipline selects the propagation discipline.
	Discipline Discipline
	// ActiveRounds is a message's active window in round ticks: an entry
	// inserted with publish round r expires at round r+ActiveRounds, and
	// late receipts after that window still count for reliability but
	// are neither buffered nor forwarded. Zero defaults to 8.
	ActiveRounds int
	// RoundInterval is the gossip round tick; zero derives it from the
	// latency model exactly as the protocol runtime does (the latency
	// bound when the model has one, else 20ms; 1ms with no model).
	RoundInterval time.Duration
	// View is the membership view targets are drawn from; nil means the
	// full view.
	View membership.View
	// Batch switches the round-driven disciplines (push, push-pull) to
	// batched wire messages: one digest / one NACK set / one repair batch
	// per (member, round, peer) instead of one event per buffered entry,
	// cutting kernel events per round from O(buffer·fanout) to O(fanout).
	// Loss and latency then apply per batch rather than per entry, so
	// batched runs are statistically pinned against per-id runs, not
	// byte-identical. Eager and flood forward single fresh ids per receipt
	// and ignore the flag.
	Batch bool
	// SummaryOnly folds the per-message accounting into the run-level
	// aggregates (outcome tallies, reliability moments, latency moments,
	// the ledger) and leaves Result.Messages nil — removing the run's only
	// O(messages) allocation, which is what lets 10⁶–10⁷-rumor runs fit in
	// memory. Every Result field except Messages is unchanged.
	SummaryOnly bool
}

// Validate reports whether the config describes a runnable stream (the
// facade's upfront parameter check; Run normalizes again internally).
func (c Config) Validate() error {
	_, err := c.normalize()
	return err
}

// normalize validates cfg and fills defaults.
func (c Config) normalize() (Config, error) {
	if c.N < 2 {
		return c, fmt.Errorf("stream: group size %d < 2", c.N)
	}
	if c.Rate <= 0 {
		return c, fmt.Errorf("stream: offered rate %g msgs/s must be positive", c.Rate)
	}
	if c.Duration <= 0 {
		return c, fmt.Errorf("stream: publish window %v must be positive", c.Duration)
	}
	if c.Fanout == nil {
		return c, errors.New("stream: nil fanout distribution")
	}
	if c.MaxMessages == 0 {
		c.MaxMessages = 4096
	}
	if c.MaxMessages < 1 || c.MaxMessages > MaxMessagesCap {
		return c, fmt.Errorf("stream: message cap %d outside [1, %d]", c.MaxMessages, MaxMessagesCap)
	}
	if c.Sources == 0 {
		c.Sources = c.N
	}
	if c.Sources < 1 || c.Sources > c.N {
		return c, fmt.Errorf("stream: %d sources outside [1, %d]", c.Sources, c.N)
	}
	if c.AliveRatio == 0 {
		c.AliveRatio = 1
	}
	if c.AliveRatio < 0 || c.AliveRatio > 1 {
		return c, fmt.Errorf("stream: alive ratio %g outside [0, 1]", c.AliveRatio)
	}
	if c.BufferCap == 0 {
		c.BufferCap = 32
	}
	if c.BufferCap < 1 {
		return c, fmt.Errorf("stream: buffer capacity %d < 1", c.BufferCap)
	}
	if c.ActiveRounds == 0 {
		c.ActiveRounds = 8
	}
	if c.ActiveRounds < 1 {
		return c, fmt.Errorf("stream: active window %d rounds < 1", c.ActiveRounds)
	}
	if c.RoundInterval < 0 {
		return c, fmt.Errorf("stream: negative round interval %v", c.RoundInterval)
	}
	if c.View != nil && c.View.N() != c.N {
		return c, fmt.Errorf("stream: view over %d members for group size %d", c.View.N(), c.N)
	}
	return c, nil
}

// interval resolves the round tick, mirroring the protocol runtime's
// derivation: an explicit RoundInterval wins; otherwise the latency
// model's bound (so a round's messages land before the next round), 20ms
// for unbounded models, 1ms with no model.
func (c Config) interval(netCfg simnet.Config) time.Duration {
	if c.RoundInterval > 0 {
		return c.RoundInterval
	}
	if netCfg.Latency == nil {
		return time.Millisecond
	}
	if b, ok := netCfg.Latency.(simnet.LatencyBounder); ok {
		if d, bounded := b.LatencyBound(); bounded && d > 0 {
			return d
		}
	}
	return 20 * time.Millisecond
}

// MessageOutcome classifies one scheduled message's fate at quiescence.
type MessageOutcome uint8

const (
	// MsgDelivered: every initially-alive member received it.
	MsgDelivered MessageOutcome = iota
	// MsgLostEviction: incompletely delivered with at least one buffered
	// copy evicted under capacity pressure.
	MsgLostEviction
	// MsgLostDrop: incompletely delivered, no evictions, but at least
	// one of its sends never arrived (network loss, crashed or dead
	// destination, partition).
	MsgLostDrop
	// MsgDied: incompletely delivered with neither evictions nor drops —
	// propagation stopped on its own (e.g. zero fanout draws before the
	// active window closed).
	MsgDied
	// MsgSkipped: the source was dead or crashed at publish time; the
	// message never entered the stream.
	MsgSkipped
)

// String names the outcome for labels and CSV columns.
func (o MessageOutcome) String() string {
	switch o {
	case MsgDelivered:
		return "delivered"
	case MsgLostEviction:
		return "lost-eviction"
	case MsgLostDrop:
		return "lost-drop"
	case MsgDied:
		return "died"
	case MsgSkipped:
		return "skipped"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// MessageResult is one message's per-run accounting.
type MessageResult struct {
	// ID is the schedule index (also the tag id); Source the publishing
	// member; PublishedAt its scheduled publish time.
	ID          int
	Source      int
	PublishedAt time.Duration
	// Delivered counts first receipts (source included); Reliability is
	// Delivered over the initially-alive member count.
	Delivered   int
	Reliability float64
	// Duplicates counts redundant receipts; Evictions buffered copies of
	// this message displaced by the policy; Drops its sends (any kind)
	// that never arrived.
	Duplicates int
	Evictions  int
	Drops      int64
	// Outcome is the message's classification.
	Outcome MessageOutcome
}

// Ledger is the run's conservation accounting. At quiescence the copy
// identity Inserted = Evicted + Expired + Resident holds exactly (with
// Resident zero for a drained run), and the network identity
// Sends = Net.SentEntries() + Net.DownEntries(),
// Receipts = Net.DeliveredEntries() ties the engine's own counters to the
// fabric's in id-entry units — for per-id runs the entry helpers collapse
// to Sent/DroppedDown/Delivered and the identity is the wire-level one.
type Ledger struct {
	// Inserted counts buffer insertions; Evicted capacity-pressure
	// displacements; Expired age-outs at round ticks; Resident copies
	// still buffered when the run ended.
	Inserted, Evicted, Expired, Resident int64
	// Sends counts engine send calls of every message kind; Receipts
	// engine handler invocations.
	Sends, Receipts int64
	// RepairMisses counts NACKs that arrived after the holder had
	// already evicted or expired the requested entry (push-pull only).
	RepairMisses int64
}

// Result is one streaming run's outcome.
type Result struct {
	// N is the group size; AliveCount the initially-alive member count.
	N          int
	AliveCount int
	// Scheduled is the publish-schedule length; Published + Skipped ==
	// Scheduled always (the summary mode's replacement for
	// len(Messages)).
	Scheduled int
	// Published counts messages that entered the stream; Skipped those
	// whose source was down at publish time (Published+Skipped is the
	// schedule length).
	Published, Skipped int
	// Outcome tallies over published messages (they partition Published).
	FullyDelivered, LostEviction, LostDrop, Died int
	// MeanReliability and MinReliability summarize the per-message
	// reliability distribution over published messages; Reliability holds
	// its full running moments (count, mean, stddev), the summary mode's
	// stand-in for iterating Messages.
	MeanReliability, MinReliability float64
	Reliability                     stats.Running
	// Delivered is total first receipts across all messages (sources
	// included); MessagesSent total engine sends of every kind;
	// Duplicates total redundant receipts across messages.
	Delivered    int
	MessagesSent int64
	Duplicates   int64
	// DeliveryLatency summarizes per-receipt latency (receipt minus
	// publish time, in seconds; source self-receipts excluded).
	DeliveryLatency stats.Running
	// Rounds is the number of round ticks fired; End the final virtual
	// time.
	Rounds int
	End    time.Duration
	// Messages is the per-message accounting, schedule order. It is the
	// run's only O(messages) allocation — and nil under
	// Config.SummaryOnly, which folds everything it carries into the
	// aggregate fields above.
	Messages []MessageResult
	// SummaryOnly records that this run folded per-message accounting
	// (Messages is nil by construction, not because nothing was
	// scheduled).
	SummaryOnly bool
	// Ledger is the conservation accounting; Net the fabric's final
	// counters.
	Ledger Ledger
	Net    simnet.Stats
}
