package stream

import (
	"runtime"
	"testing"
	"time"

	"gossipkit/internal/dist"
	"gossipkit/internal/simnet"
	"gossipkit/internal/xrand"
)

// benchStream drives one streaming configuration as a sub-benchmark:
// untimed warm-up (arena rows, bitsets, kernel queues grow once), then
// timed runs reporting entry-unit throughput (msgs/sec counts id entries,
// so per-id and batched wire formats compare on equal terms) and the warm
// malloc count. allocGuard > 0 fails the benchmark when a warm iteration
// allocates more than that — the arena-discipline and summary-mode
// O(M)-allocation guard.
func benchStream(b *testing.B, cfg Config, netCfg simnet.Config, minRel float64, allocGuard uint64) {
	arena := NewArena()
	r := xrand.New(1)
	run := func() Result {
		res, err := RunProbed(cfg, netCfg, r, nil, arena, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Published == 0 || res.MeanReliability < minRel {
			b.Fatalf("broken stream: published %d, reliability %.4f", res.Published, res.MeanReliability)
		}
		return res
	}
	run()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var sent int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sent += run().MessagesSent // Ledger.Sends: id entries, wire-format independent
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	perIter := (after.Mallocs - before.Mallocs) / uint64(b.N)
	b.ReportMetric(float64(perIter), "warm-allocs/op")
	b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "msgs/sec")
	if allocGuard > 0 && perIter > allocGuard {
		b.Fatalf("warm streaming iteration makes %d mallocs, want <= %d — state is escaping the arena",
			perIter, allocGuard)
	}
}

// BenchmarkStreamSteadyState is the streaming headline, in three regimes:
//
//   - n=100k/rumors=32: the group-size story — 10⁵ members, dozens of
//     concurrent rumors, eager per-receipt forwarding. Alloc-guarded: a
//     warm iteration may allocate O(messages) accounting but nothing O(n).
//   - rumors=10k wire=perid|batch: the wire-format story — the same 10⁴-
//     rumor push workload with one event per buffered id per peer versus
//     one batched digest per (member, round, peer). msgs/sec counts id
//     entries for both, so the ratio is the batching speedup.
//   - rumors=1M wire=batch summary: the memory-posture story — 10⁶
//     concurrent rumors under batched wire + summary-only accounting,
//     alloc-guarded to a small constant: no O(M) allocation survives
//     warm-up, so multi-million-rumor sweeps hold a few hundred MB.
func BenchmarkStreamSteadyState(b *testing.B) {
	b.Run("n=100k/rumors=32", func(b *testing.B) {
		benchStream(b, Config{
			N:          100_000,
			Rate:       160, // ~32 concurrent rumors over the window
			Duration:   200 * time.Millisecond,
			Fanout:     dist.NewPoisson(5),
			AliveRatio: 0.9,
			BufferCap:  16,
			Eviction:   EvictLpbcast,
			Discipline: DisciplineEager,
		}, simnet.Config{
			Latency: simnet.UniformLatency{Lo: time.Millisecond, Hi: 10 * time.Millisecond},
		}, 0.5, 128)
	})

	rumors10k := Config{
		N:             5_000,
		Rate:          125_000, // schedule cap reached ~80ms in
		Duration:      200 * time.Millisecond,
		Fanout:        dist.NewFixed(3),
		BufferCap:     16,
		Discipline:    DisciplinePush,
		ActiveRounds:  8,
		RoundInterval: 10 * time.Millisecond,
		MaxMessages:   10_000,
	}
	net10k := simnet.Config{
		Latency: simnet.UniformLatency{Lo: time.Millisecond, Hi: 5 * time.Millisecond},
	}
	b.Run("rumors=10k/wire=perid", func(b *testing.B) {
		benchStream(b, rumors10k, net10k, 0, 0)
	})
	b.Run("rumors=10k/wire=batch", func(b *testing.B) {
		cfg := rumors10k
		cfg.Batch = true
		benchStream(b, cfg, net10k, 0, 0)
	})

	b.Run("rumors=1M/wire=batch/summary", func(b *testing.B) {
		if testing.Short() {
			b.Skip("10⁶-rumor run in -short mode")
		}
		benchStream(b, Config{
			N:             2_000,
			Rate:          12_500_000, // schedule cap reached ~80ms in
			Duration:      160 * time.Millisecond,
			Fanout:        dist.NewFixed(3),
			BufferCap:     16,
			Discipline:    DisciplinePush,
			ActiveRounds:  8,
			RoundInterval: 10 * time.Millisecond,
			MaxMessages:   1_000_000,
			Batch:         true,
			SummaryOnly:   true,
		}, simnet.Config{
			Latency: simnet.UniformLatency{Lo: time.Millisecond, Hi: 5 * time.Millisecond},
		}, 0, 128)
	})
}
