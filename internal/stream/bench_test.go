package stream

import (
	"runtime"
	"testing"
	"time"

	"gossipkit/internal/dist"
	"gossipkit/internal/simnet"
	"gossipkit/internal/xrand"
)

// BenchmarkStreamSteadyState is the streaming headline: n=10⁵ members
// under a sustained publish stream — dozens of concurrent rumors
// contending for bounded buffers — measured in msgs/sec through the
// fabric and alloc-guarded: after warm-up an iteration may allocate
// O(messages) accounting (the Result.Messages slice) but nothing O(n),
// so the guard is a small constant unrelated to group size.
func BenchmarkStreamSteadyState(b *testing.B) {
	cfg := Config{
		N:          100_000,
		Rate:       160, // ~32 concurrent rumors over the window
		Duration:   200 * time.Millisecond,
		Fanout:     dist.NewPoisson(5),
		AliveRatio: 0.9,
		BufferCap:  16,
		Eviction:   EvictLpbcast,
		Discipline: DisciplineEager,
	}
	netCfg := simnet.Config{Latency: simnet.UniformLatency{Lo: time.Millisecond, Hi: 10 * time.Millisecond}}
	arena := NewArena()
	r := xrand.New(1)
	run := func() Result {
		res, err := RunProbed(cfg, netCfg, r, nil, arena, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Published == 0 || res.MeanReliability < 0.5 {
			b.Fatalf("broken stream: published %d, reliability %.4f", res.Published, res.MeanReliability)
		}
		return res
	}
	run() // untimed warm-up: arena rows, bitsets, and kernel queues grow once
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var sent int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sent += run().MessagesSent
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	perIter := (after.Mallocs - before.Mallocs) / uint64(b.N)
	b.ReportMetric(float64(perIter), "warm-allocs/op")
	b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "msgs/sec")
	if perIter > 128 {
		b.Fatalf("warm streaming n=10⁵ iteration makes %d mallocs, want <= 128 — per-member or per-send state is escaping the arena", perIter)
	}
}
