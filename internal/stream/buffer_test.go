package stream

import (
	"math"
	"reflect"
	"testing"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
	"gossipkit/internal/stats"
	"gossipkit/internal/xrand"
)

// TestBufferNeverExceedsCapacity drives a buffer row through a long
// random insert/expire schedule under every policy and checks the
// capacity invariant after every operation.
func TestBufferNeverExceedsCapacity(t *testing.T) {
	for _, policy := range []EvictionPolicy{EvictFIFO, EvictRandom, EvictAge, EvictLpbcast} {
		t.Run(policy.String(), func(t *testing.T) {
			const capacity, msgs = 5, 200
			rng := xrand.New(42)
			pubRound := make([]int32, msgs)
			for m := range pubRound {
				pubRound[m] = int32(rng.Intn(50))
			}
			var b buffers
			b.reset(3, capacity)
			seq := uint32(0)
			for op := 0; op < 2000; op++ {
				l := rng.Intn(3)
				if rng.Bool(0.8) {
					seq++
					b.insert(l, int32(rng.Intn(msgs)), seq, policy, pubRound, rng)
				} else {
					b.expireRow(l, int32(rng.Intn(60)), 8, pubRound)
				}
				for row := 0; row < 3; row++ {
					if n := b.len(row); n > capacity {
						t.Fatalf("op %d: row %d holds %d entries, capacity %d", op, row, n, capacity)
					}
				}
			}
		})
	}
}

// TestEvictionVictimOrder pins each policy's victim choice on a crafted
// full buffer: distinct insertion sequences, publish rounds, and
// duplicate counts that disagree about who should go.
func TestEvictionVictimOrder(t *testing.T) {
	// Message m's publish round; message 2 is oldest news, message 0 newest.
	pubRound := []int32{9, 5, 1, 3, 7}
	fill := func() *buffers {
		var b buffers
		b.reset(1, 4)
		// Insertion order (seq): 3, 0, 2, 1 — so FIFO's victim is msg 3.
		for _, m := range []int32{3, 0, 2, 1} {
			b.insert(0, m, uint32(len(b.row(0))+1), EvictFIFO, pubRound, nil)
		}
		return &b
	}

	t.Run("fifo", func(t *testing.T) {
		b := fill()
		victim, evicted := b.insert(0, 4, 99, EvictFIFO, pubRound, nil)
		if !evicted || victim != 3 {
			t.Fatalf("FIFO evicted %d (evicted=%v), want first-inserted 3", victim, evicted)
		}
	})
	t.Run("age", func(t *testing.T) {
		b := fill()
		victim, evicted := b.insert(0, 4, 99, EvictAge, pubRound, nil)
		if !evicted || victim != 2 {
			t.Fatalf("age evicted %d (evicted=%v), want oldest-published 2", victim, evicted)
		}
	})
	t.Run("lpbcast", func(t *testing.T) {
		b := fill()
		// Message 0 has been seen as a duplicate twice; everyone else never.
		i := b.find(0, 0)
		b.bump(0, i)
		b.bump(0, i)
		victim, evicted := b.insert(0, 4, 99, EvictLpbcast, pubRound, nil)
		if !evicted || victim != 0 {
			t.Fatalf("lpbcast evicted %d (evicted=%v), want most-duplicated 0", victim, evicted)
		}
	})
	t.Run("lpbcast-tie-breaks-on-age", func(t *testing.T) {
		b := fill()
		// All duplicate counts equal: falls back to oldest publish round.
		victim, evicted := b.insert(0, 4, 99, EvictLpbcast, pubRound, nil)
		if !evicted || victim != 2 {
			t.Fatalf("lpbcast tie evicted %d (evicted=%v), want oldest-published 2", victim, evicted)
		}
	})
	t.Run("random-is-seeded", func(t *testing.T) {
		a, b := fill(), fill()
		va, _ := a.insert(0, 4, 99, EvictRandom, pubRound, xrand.New(8))
		vb, _ := b.insert(0, 4, 99, EvictRandom, pubRound, xrand.New(8))
		if va != vb {
			t.Fatalf("random eviction not reproducible: %d vs %d", va, vb)
		}
	})
}

// TestExpireRowStable checks that expiry compacts in place preserving
// insertion order among survivors.
func TestExpireRowStable(t *testing.T) {
	pubRound := []int32{1, 10, 1, 10, 1}
	var b buffers
	b.reset(1, 8)
	for _, m := range []int32{0, 1, 2, 3, 4} {
		b.insert(0, m, uint32(m+1), EvictFIFO, pubRound, nil)
	}
	// active=2: entries published round 1 expire at round 3.
	if dropped := b.expireRow(0, 3, 2, pubRound); dropped != 3 {
		t.Fatalf("dropped %d entries, want 3", dropped)
	}
	row := b.row(0)
	if len(row) != 2 || row[0].msg != 1 || row[1].msg != 3 {
		t.Fatalf("survivors %v, want [1 3] in insertion order", row)
	}
}

// TestEvictionPoliciesUnderPressure runs each policy at an offered load
// that overflows the buffers, checking the ledger and that eviction loss
// is actually exercised and deterministic.
func TestEvictionPoliciesUnderPressure(t *testing.T) {
	for _, policy := range []EvictionPolicy{EvictFIFO, EvictRandom, EvictAge, EvictLpbcast} {
		t.Run(policy.String(), func(t *testing.T) {
			cfg := testConfig()
			cfg.Discipline = DisciplinePush
			cfg.Rate = 3000
			cfg.BufferCap = 3
			cfg.Eviction = policy
			a, err := Run(cfg, testNetConfig(), xrand.New(21))
			if err != nil {
				t.Fatal(err)
			}
			checkLedger(t, a)
			if a.Ledger.Evicted == 0 {
				t.Fatal("overload run evicted nothing")
			}
			b, err := Run(cfg, testNetConfig(), xrand.New(21))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatal("eviction run not deterministic across repeats")
			}
			sharded, err := RunSharded(cfg, testNetConfig(), xrand.New(21), nil, nil, nil,
				core.ShardOptions{Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, sharded) {
				t.Fatal("eviction run diverged between single and shards=1")
			}
		})
	}
}

// TestReliabilityPin25Seeds is the satellite statistical pin: mean
// per-message reliability over 25 seeds at a fixed (rate, policy)
// operating point. The run is byte-deterministic per seed, so the
// 25-seed mean is an exact constant of the implementation; the tolerance
// only absorbs floating-point summation order.
func TestReliabilityPin25Seeds(t *testing.T) {
	cfg := Config{
		N:          48,
		Rate:       1500,
		Duration:   200 * time.Millisecond,
		Fanout:     dist.NewFixed(2),
		BufferCap:  4,
		Eviction:   EvictAge,
		Discipline: DisciplinePush,
	}
	arena := NewArena()
	var agg stats.Running
	for seed := uint64(1); seed <= 25; seed++ {
		res, err := RunProbed(cfg, testNetConfig(), xrand.New(seed), nil, arena, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkLedger(t, res)
		agg.Add(res.MeanReliability)
	}
	const pinned = 0.672227069416
	if math.Abs(agg.Mean()-pinned) > 1e-9 {
		t.Errorf("25-seed mean reliability %.12f, pinned %.12f", agg.Mean(), pinned)
	}
}
