package stream

import (
	"gossipkit/internal/core"
	"gossipkit/internal/obs"
	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
	"gossipkit/internal/stats"
	"gossipkit/internal/xrand"
)

// pubState values in runShared.pubState (one byte per schedule entry,
// written only by the owning member's worker).
const (
	pubNone    uint8 = iota
	pubDone          // published: the source inserted and began gossiping
	pubSkipped       // source dead or crashed at publish time
)

// worker executes the stream over one contiguous member block — the whole
// group on a single kernel, one block per shard kernel on the sharded
// runtime. Everything here is written by the block's goroutine during
// windows (and by the coordinator only while workers are parked). The
// trailing pad keeps neighboring workers' hot counters off each other's
// cache lines.
type worker struct {
	s           int // shard index
	base, limit int // member block [base, limit)
	nw          *simnet.Network
	rng         *xrand.RNG
	sh          *runShared
	bits        *core.MessageBits // M rows × block width, local ids
	buf         buffers
	targets     []int
	probe       *obs.StreamProbe
	pubList     []int32 // schedule indices this worker publishes, time order
	pubHID      sim.HandlerID

	// ids assembles one outgoing batch per (member, round) under
	// Config.Batch; reply assembles batched NACK sets and repair batches
	// inside the batch handler. Both are scratch: SendBatch copies into a
	// pooled slab at send time.
	ids   []int32
	reply []int32
	// pend marks (message, member) pairs with a NACK in flight (push-pull
	// only, nil otherwise): a member never re-NACKs an id it already
	// requested this round, whatever duplicate digests arrive meanwhile.
	// pendM/pendL list the set bits so each round tick retires the marks
	// in O(marks) — the dedupe window is one round, after which an
	// unanswered NACK (lost, or its repair lost) may be retried.
	pend         *core.MessageBits
	pendM, pendL []int32

	seq   uint32
	occ   int64 // occupancy gauge (probe-sampled)
	act   int64 // active-message gauge (lead worker only)
	acPub int   // schedule cursors behind the active gauge
	acExp int
	round int32

	published, skipped         int64
	inserted, evicted, expired int64
	repairMiss                 int64
	sends, recvs               []int64 // per message, every kind
	first, dups, evics         []int32 // per message
	firstTotal                 int
	lat                        stats.Running
	_                          [64]byte
}

// reset binds the worker to a fresh run over block [base, limit). pend is
// the leased pending-repair matrix for push-pull runs, nil for every other
// discipline.
func (w *worker) reset(s, base, limit int, nw *simnet.Network, rng *xrand.RNG,
	sh *runShared, bits, pend *core.MessageBits, probe *obs.StreamProbe, pubList []int32) {
	w.s, w.base, w.limit = s, base, limit
	w.nw, w.rng, w.sh, w.bits, w.probe = nw, rng, sh, bits, probe
	w.pend = pend
	w.pendM, w.pendL = w.pendM[:0], w.pendL[:0]
	w.pubList = pubList
	w.buf.reset(limit-base, sh.cfg.BufferCap)
	w.seq, w.occ, w.act = 0, 0, 0
	w.acPub, w.acExp = 0, 0
	w.round = 0
	w.published, w.skipped = 0, 0
	w.inserted, w.evicted, w.expired = 0, 0, 0
	w.repairMiss = 0
	w.firstTotal = 0
	w.lat = stats.Running{}
	M := sh.M
	w.sends = growI64(w.sends, M)
	w.recvs = growI64(w.recvs, M)
	w.first = growI32(w.first, M)
	w.dups = growI32(w.dups, M)
	w.evics = growI32(w.evics, M)
}

func growI64(s []int64, n int) []int64 {
	if cap(s) >= n {
		s = s[:n]
		clear(s)
		return s
	}
	return make([]int64, n)
}

func growI32(s []int32, n int) []int32 {
	if cap(s) >= n {
		s = s[:n]
		clear(s)
		return s
	}
	return make([]int32, n)
}

func (w *worker) local(id int) int { return id - w.base }

// sendTag emits one protocol message for schedule entry m and tallies it.
func (w *worker) sendTag(from, to int, m, kind int32) {
	w.sends[m]++
	w.nw.SendTag(simnet.NodeID(from), simnet.NodeID(to), tagOf(m, kind))
}

// sendBatch emits one wire message carrying every id in ids as kind,
// tallying each entry — the entry tallies keep Ledger.Sends in id units so
// the conservation identity is wire-format independent.
func (w *worker) sendBatch(from, to int, kind int32, ids []int32) {
	for _, m := range ids {
		w.sends[m]++
	}
	w.nw.SendBatch(simnet.NodeID(from), simnet.NodeID(to), kind, ids)
}

// pendHas reports whether member l already has a NACK in flight for m
// this round (false when the run keeps no pending state).
func (w *worker) pendHas(m, l int) bool { return w.pend != nil && w.pend.Get(m, l) }

// pendMark records l's in-flight NACK for m so duplicate digests this
// round don't trigger duplicate repair round-trips.
func (w *worker) pendMark(m, l int) {
	if w.pend == nil {
		return
	}
	w.pend.Set(m, l)
	w.pendM = append(w.pendM, int32(m))
	w.pendL = append(w.pendL, int32(l))
}

// pendRetire clears every pending-repair mark — the per-round dedupe
// window closing at the worker's tick.
func (w *worker) pendRetire() {
	if len(w.pendM) == 0 {
		return
	}
	for i, m := range w.pendM {
		w.pend.Unset(int(m), int(w.pendL[i]))
	}
	w.pendM, w.pendL = w.pendM[:0], w.pendL[:0]
}

// onMessage is the block's network handler, dispatching on the packed
// (id, kind) tag.
func (w *worker) onMessage(now sim.Time, msg simnet.Message) {
	m := msg.Tag >> kindBits
	w.recvs[m]++
	id := int(msg.To)
	switch msg.Tag & kindMask {
	case kindData, kindRepair:
		w.receiveData(id, int(m), now, false)
	case kindDigest:
		// NACK only ids not yet received whose active window is still
		// open — a stale digest is not worth a repair round-trip — and
		// not already requested this round (the pending-repair dedupe).
		if l := w.local(id); !w.bits.Get(int(m), l) && now < w.sh.expiry[m] && !w.pendHas(int(m), l) {
			w.pendMark(int(m), l)
			w.sendTag(id, int(msg.From), m, kindNack)
		}
	case kindNack:
		if w.buf.find(w.local(id), m) >= 0 {
			w.sendTag(id, int(msg.From), m, kindRepair)
		} else {
			w.repairMiss++ // already evicted or expired here
		}
	}
}

// onBatch is the block's batch handler — the Config.Batch wire format,
// where one network event carries a whole (member, round, peer) digest,
// NACK set, or repair batch. Replies batch symmetrically: one digest in,
// at most one NACK set out; one NACK set in, at most one repair batch
// out. The ids slice aliases the fabric's pooled slab, consumed before
// any reply is sent (SendBatch copies the reply scratch at send time).
func (w *worker) onBatch(now sim.Time, from, to simnet.NodeID, kind int32, ids []int32) {
	id := int(to)
	l := w.local(id)
	for _, m := range ids {
		w.recvs[m]++
	}
	switch kind {
	case kindData, kindRepair:
		for _, m := range ids {
			w.receiveData(id, int(m), now, false)
		}
	case kindDigest:
		w.reply = w.reply[:0]
		for _, m := range ids {
			if !w.bits.Get(int(m), l) && now < w.sh.expiry[m] && !w.pendHas(int(m), l) {
				w.pendMark(int(m), l)
				w.reply = append(w.reply, m)
			}
		}
		if len(w.reply) > 0 {
			w.sendBatch(id, int(from), kindNack, w.reply)
		}
	case kindNack:
		w.reply = w.reply[:0]
		for _, m := range ids {
			if w.buf.find(l, m) >= 0 {
				w.reply = append(w.reply, m)
			} else {
				w.repairMiss++ // already evicted or expired here
			}
		}
		if len(w.reply) > 0 {
			w.sendBatch(id, int(from), kindRepair, w.reply)
		}
	}
}

// receiveData processes a copy of message m arriving at member id —
// from the network (data or repair), from the publish bootstrap
// (origin=true), or out of band from the scenario seam. First receipts
// are recorded unconditionally (late copies still count for
// reliability); buffering and forwarding happen only inside the active
// window.
func (w *worker) receiveData(id, m int, now sim.Time, origin bool) {
	l := w.local(id)
	if w.bits.Get(m, l) {
		w.dups[m]++
		if i := w.buf.find(l, int32(m)); i >= 0 {
			w.buf.bump(l, i) // the lpbcast eviction signal
		}
		return
	}
	w.bits.Set(m, l)
	w.first[m]++
	w.firstTotal++
	if !origin {
		d := now - w.sh.pubTime[m]
		w.lat.Add(d.Seconds())
		w.probe.ObserveDeliver(now, d)
	}
	if now >= w.sh.expiry[m] {
		return // late receipt: counted, not buffered or forwarded
	}
	w.insert(l, int32(m), now)
	switch w.sh.cfg.Discipline {
	case DisciplineEager:
		w.forwardFanout(id, int32(m))
	case DisciplineFlood:
		w.forwardAll(id, int32(m))
	}
}

// insert admits m into member l's buffer, accounting the eviction if the
// policy displaced a victim.
func (w *worker) insert(l int, m int32, now sim.Time) {
	w.seq++
	w.inserted++
	victim, evicted := w.buf.insert(l, m, w.seq, w.sh.cfg.Eviction, w.sh.pubRound, w.rng)
	if evicted {
		w.evicted++
		w.evics[victim]++
		w.probe.ObserveEvict(now)
	} else {
		w.occ++
	}
}

// forwardFanout pushes m from id to a fresh fanout draw of targets.
func (w *worker) forwardFanout(id int, m int32) {
	f := w.sh.cfg.Fanout.Sample(w.rng)
	if d := w.sh.view.Degree(id); f > d {
		f = d
	}
	if f <= 0 {
		return
	}
	w.targets = w.sh.view.SampleTargets(w.targets[:0], id, f, w.rng)
	for _, v := range w.targets {
		w.sendTag(id, v, m, kindData)
	}
}

// forwardAll pushes m from id to its entire view (flooding).
func (w *worker) forwardAll(id int, m int32) {
	d := w.sh.view.Degree(id)
	if d <= 0 {
		return
	}
	w.targets = w.sh.view.SampleTargets(w.targets[:0], id, d, w.rng)
	for _, v := range w.targets {
		w.sendTag(id, v, m, kindData)
	}
}

// publish bootstraps schedule entry m at its source: the origin receipt
// (insert + discipline forward) for live sources, a skip mark for dead
// ones.
func (w *worker) publish(m int, now sim.Time) {
	src := int(w.sh.source[m])
	if !w.sh.mask.Alive(src) || !w.nw.Up(simnet.NodeID(src)) {
		w.skipped++
		w.sh.pubState[m] = pubSkipped
		return
	}
	w.published++
	w.sh.pubState[m] = pubDone
	w.probe.ObservePublish(now)
	w.receiveData(src, m, now, true)
}

// armPublishes installs the worker's publish chain on kernel k: a typed
// handler whose payload is the position in pubList, each firing
// scheduling the next — no closure per message, so warm runs allocate
// nothing here.
func (w *worker) armPublishes(k *sim.Kernel) {
	if len(w.pubList) == 0 {
		return
	}
	w.pubHID = k.RegisterHandler(func(now sim.Time, _, pos int32) {
		w.publish(int(w.pubList[pos]), now)
		if next := pos + 1; int(next) < len(w.pubList) {
			k.Schedule(w.sh.pubTime[w.pubList[next]], w.pubHID, 0, next)
		}
	})
	k.Schedule(w.sh.pubTime[w.pubList[0]], w.pubHID, 0, 0)
}

// installTick installs the worker's round tick: expiry compaction every
// round for every member, round gossip for the push disciplines, and the
// active-message gauge on the lead worker. Ticks stop after the round at
// which the whole schedule has expired; in-flight arrivals drain after.
func (w *worker) installTick(k *sim.Kernel) {
	sh := w.sh
	k.Every(0, sh.interval, func() bool {
		w.tick(k.Now())
		return w.round <= sh.lastRound
	})
}

// tick runs one round over the worker's block. Only members with
// non-empty buffers draw RNG, so idle ticks perturb no streams.
func (w *worker) tick(now sim.Time) {
	R := w.round
	w.round++
	sh := w.sh
	if w.s == 0 {
		// The active-message gauge: schedule entries published but not
		// yet expired at this tick (lead worker only; the shard merge
		// passes it through).
		for w.acPub < sh.M && sh.pubTime[w.acPub] <= now {
			w.acPub++
			w.act++
		}
		for w.acExp < sh.M && sh.expiry[w.acExp] <= now {
			w.acExp++
			w.act--
		}
	}
	w.pendRetire() // close the round's NACK-dedupe window
	active := int32(sh.cfg.ActiveRounds)
	disc := sh.cfg.Discipline
	for id := w.base; id < w.limit; id++ {
		l := id - w.base
		if w.buf.len(l) == 0 {
			continue
		}
		if k := w.buf.expireRow(l, R, active, sh.pubRound); k > 0 {
			w.occ -= int64(k)
			w.expired += int64(k)
			w.probe.ObserveExpire(now, k)
		}
		if w.buf.len(l) == 0 || (disc != DisciplinePush && disc != DisciplinePushPull) {
			continue
		}
		if !w.nw.Up(simnet.NodeID(id)) {
			continue // crashed mid-run: buffered, but silent
		}
		f := sh.cfg.Fanout.Sample(w.rng)
		if d := sh.view.Degree(id); f > d {
			f = d
		}
		if f <= 0 {
			continue
		}
		kind := kindData
		if disc == DisciplinePushPull {
			kind = kindDigest
		}
		w.targets = sh.view.SampleTargets(w.targets[:0], id, f, w.rng)
		if sh.cfg.Batch {
			// One wire message per target carrying the whole buffer:
			// O(fanout) kernel events for this member's round instead of
			// O(buffer·fanout).
			w.ids = w.ids[:0]
			for _, e := range w.buf.row(l) {
				w.ids = append(w.ids, e.msg)
			}
			for _, v := range w.targets {
				w.sendBatch(id, v, kind, w.ids)
			}
			continue
		}
		for _, v := range w.targets {
			for _, e := range w.buf.row(l) {
				w.sendTag(id, v, e.msg, kind)
			}
		}
	}
}

// scenarioPublish is the core.NetRun publish hook for member id: if id
// lacks the most recently published message (latest, -1 for none) it
// obtains it out of band — an additional publisher — otherwise it
// re-gossips its whole buffer in one eager burst. Runs on the worker's
// own clock.
func (w *worker) scenarioPublish(id, latest int, now sim.Time) {
	if !w.sh.mask.Alive(id) || !w.nw.Up(simnet.NodeID(id)) {
		return
	}
	if latest >= 0 && !w.bits.Get(latest, w.local(id)) {
		w.receiveData(id, latest, now, false)
		return
	}
	for _, e := range w.buf.row(w.local(id)) {
		w.forwardFanout(id, e.msg)
	}
}
