package stream

import (
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/failure"
	"gossipkit/internal/membership"
	"gossipkit/internal/sim"
	"gossipkit/internal/xrand"
)

// runShared is the per-run state every worker reads: the normalized
// config, the precomputed publish schedule, and the mask and view. All
// fields except pubState are frozen before the first event.
type runShared struct {
	cfg      Config
	M        int        // schedule length
	pubTime  []sim.Time // per-message publish time, nondecreasing
	source   []int32    // per-message publishing member
	pubRound []int32    // first round tick at or after the publish
	expiry   []sim.Time // tick time at which the entry ages out
	interval time.Duration
	// lastRound is the round at which the last schedule entry expires —
	// the static tick horizon for every worker.
	lastRound int32
	mask      *failure.Mask
	view      membership.View
	// pubState records each schedule entry's publish fate (pubNone /
	// pubDone / pubSkipped). Entry m is written only by the worker owning
	// source[m] — distinct byte addresses, so concurrent shards never
	// race — and read only with workers parked.
	pubState []uint8
}

// Arena pools the reusable state of streaming runs: the underlying
// core.NetArena (kernels, networks, failure mask, delivery matrices), the
// schedule arrays, the per-shard publish lists, and the workers with
// their buffers and tallies. One arena serves many runs — after the first
// run at a given shape an execution performs zero O(n)- or O(M)-sized
// allocations beyond the documented Result.Messages slice. Single-
// goroutine state between runs.
type Arena struct {
	net     *core.NetArena
	sh      runShared
	pubBy   [][]int32 // per-shard publish lists (index 0 doubles as the single-kernel list)
	workers []*worker
}

// NewArena returns an empty arena; buffers grow on first use.
func NewArena() *Arena { return &Arena{net: core.NewNetArena()} }

// NewArenaOn returns an arena riding an existing core.NetArena — for
// callers that already pool network run state per worker (the scenario
// executor seam) and want streaming runs to recycle the same kernels,
// networks, and delivery matrices. A nil net behaves like NewArena.
func NewArenaOn(net *core.NetArena) *Arena {
	if net == nil {
		return NewArena()
	}
	return &Arena{net: net}
}

// schedule draws the run's publish schedule from a non-consuming split of
// r: Poisson inter-arrivals at the aggregate rate, sources uniform over
// [0, Sources), stopping at the publish window or the message cap. The
// derived round geometry (publish rounds, expiry times, the final round)
// comes with it. The returned runShared is pooled; valid until the next
// call.
func (a *Arena) schedule(cfg Config, interval time.Duration, r *xrand.RNG) *runShared {
	sh := &a.sh
	sh.cfg = cfg
	sh.interval = interval
	sh.pubTime = sh.pubTime[:0]
	sh.source = sh.source[:0]
	sh.pubRound = sh.pubRound[:0]
	sh.expiry = sh.expiry[:0]
	sh.lastRound = 0
	sh.mask, sh.view = nil, nil

	rng := r.Split(publishSplit)
	t := 0.0 // seconds
	for len(sh.pubTime) < cfg.MaxMessages {
		t += rng.ExpFloat64() / cfg.Rate
		at := sim.Time(t * float64(time.Second))
		if at.Duration() > cfg.Duration {
			break
		}
		sh.pubTime = append(sh.pubTime, at)
		sh.source = append(sh.source, int32(rng.Intn(cfg.Sources)))
	}
	sh.M = len(sh.pubTime)
	active := int32(cfg.ActiveRounds)
	for _, at := range sh.pubTime {
		pr := int32(at/sim.Time(interval)) + 1
		sh.pubRound = append(sh.pubRound, pr)
		sh.expiry = append(sh.expiry, sim.Time(int64(pr)+int64(active))*sim.Time(interval))
		if pr+active > sh.lastRound {
			sh.lastRound = pr + active
		}
	}
	if cap(sh.pubState) >= sh.M {
		sh.pubState = sh.pubState[:sh.M]
		clear(sh.pubState)
	} else {
		sh.pubState = make([]uint8, sh.M)
	}
	return sh
}

// publishLists partitions the schedule into per-shard publish lists by
// owning block (shard s owns sources in [s·block, (s+1)·block)); with one
// shard the single list is the whole schedule in time order. Pooled;
// valid until the next call.
func (a *Arena) publishLists(sh *runShared, shards, block int) [][]int32 {
	for len(a.pubBy) < shards {
		a.pubBy = append(a.pubBy, nil)
	}
	a.pubBy = a.pubBy[:shards]
	for s := range a.pubBy {
		a.pubBy[s] = a.pubBy[s][:0]
	}
	for m, src := range sh.source {
		s := 0
		if shards > 1 {
			s = int(src) / block
		}
		a.pubBy[s] = append(a.pubBy[s], int32(m))
	}
	return a.pubBy
}

// worker leases the pooled worker for shard s, growing the pool as
// needed. The caller resets it for the run.
func (a *Arena) worker(s int) *worker {
	for len(a.workers) <= s {
		a.workers = append(a.workers, &worker{})
	}
	return a.workers[s]
}
