package stream

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
	"gossipkit/internal/xrand"
)

// batchTestConfig is the shared shape for wire-format comparisons: enough
// load that buffers hold several messages per round (so batching actually
// coalesces) plus churn and loss so every ledger term is exercised.
func batchTestConfig(d Discipline) Config {
	cfg := testConfig()
	cfg.Discipline = d
	cfg.AliveRatio = 0.9
	cfg.BufferCap = 8
	cfg.Rate = 800
	return cfg
}

// TestBatchStatisticalPin pins batched wire digests against the per-id
// format: one wire event per (member, round, peer) consumes the RNG
// differently, so results are not byte-identical, but over 25 seeds the
// mean per-message reliability must agree within ±0.05 on both kernels.
// Every batched run must also keep the entry-unit ledger exact.
func TestBatchStatisticalPin(t *testing.T) {
	const seeds = 25
	for _, d := range []Discipline{DisciplinePush, DisciplinePushPull} {
		t.Run(d.String(), func(t *testing.T) {
			for _, kernel := range []struct {
				name   string
				shards int
			}{{"single", 0}, {"sharded", 2}} {
				var perID, batched float64
				for seed := uint64(1); seed <= seeds; seed++ {
					for _, batch := range []bool{false, true} {
						cfg := batchTestConfig(d)
						cfg.Batch = batch
						var res Result
						var err error
						if kernel.shards == 0 {
							res, err = Run(cfg, testNetConfig(), xrand.New(seed))
						} else {
							res, err = RunSharded(cfg, testNetConfig(), xrand.New(seed), nil, nil, nil,
								core.ShardOptions{Shards: kernel.shards})
						}
						if err != nil {
							t.Fatal(err)
						}
						if res.Published == 0 {
							t.Fatal("no messages published")
						}
						checkLedger(t, res)
						if batch {
							batched += res.MeanReliability
							if res.Net.Batches == 0 {
								t.Fatal("batched run sent no batches")
							}
						} else {
							perID += res.MeanReliability
							if res.Net.Batches != 0 {
								t.Fatal("per-id run sent batches")
							}
						}
					}
				}
				perID /= seeds
				batched /= seeds
				if diff := batched - perID; diff > 0.05 || diff < -0.05 {
					t.Errorf("%s kernel: batched mean reliability %.4f vs per-id %.4f, want within ±0.05",
						kernel.name, batched, perID)
				}
			}
		})
	}
}

// TestBatchDeterministic pins the batched format's determinism contract:
// repeats (cold and warm-arena) are byte-identical, and shards=1 on the
// sharded runtime reproduces the single-kernel run exactly.
func TestBatchDeterministic(t *testing.T) {
	for _, d := range []Discipline{DisciplinePush, DisciplinePushPull} {
		t.Run(d.String(), func(t *testing.T) {
			cfg := batchTestConfig(d)
			cfg.Batch = true
			a, err := Run(cfg, testNetConfig(), xrand.New(21))
			if err != nil {
				t.Fatal(err)
			}
			arena := NewArena()
			b, err := RunProbed(cfg, testNetConfig(), xrand.New(21), nil, arena, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatal("warm-arena batched run diverged from cold run")
			}
			sharded, err := RunSharded(cfg, testNetConfig(), xrand.New(21), nil, nil, nil,
				core.ShardOptions{Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, sharded) {
				t.Fatal("shards=1 batched run diverged from single-kernel run")
			}
			c, err := RunSharded(cfg, testNetConfig(), xrand.New(21), nil, nil, nil,
				core.ShardOptions{Shards: 3})
			if err != nil {
				t.Fatal(err)
			}
			checkLedger(t, c)
			e, err := RunSharded(cfg, testNetConfig(), xrand.New(21), nil, arena, nil,
				core.ShardOptions{Shards: 3})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(c, e) {
				t.Fatal("fixed shards=3 batched repeat diverged")
			}
		})
	}
}

// TestSummaryOnlyEquivalence: a summary run is the same execution as a
// full run — same RNG consumption, same schedule, same aggregates — minus
// the O(messages) per-message rows. Everything except Messages and the
// mode flag must match exactly, on both kernels and both wire formats.
func TestSummaryOnlyEquivalence(t *testing.T) {
	for _, batch := range []bool{false, true} {
		cfg := batchTestConfig(DisciplinePushPull)
		cfg.Batch = batch
		full, err := Run(cfg, testNetConfig(), xrand.New(17))
		if err != nil {
			t.Fatal(err)
		}
		cfg.SummaryOnly = true
		sum, err := Run(cfg, testNetConfig(), xrand.New(17))
		if err != nil {
			t.Fatal(err)
		}
		checkLedger(t, sum)
		if sum.Messages != nil || !sum.SummaryOnly {
			t.Fatalf("summary run: Messages len %d, SummaryOnly %v; want nil rows and the flag set",
				len(sum.Messages), sum.SummaryOnly)
		}
		full.Messages = nil
		full.SummaryOnly = true
		if !reflect.DeepEqual(full, sum) {
			t.Errorf("batch=%v: summary aggregates diverged from the full run\nfull: %+v\nsum:  %+v",
				batch, full, sum)
		}

		sharded, err := RunSharded(cfg, testNetConfig(), xrand.New(17), nil, nil, nil,
			core.ShardOptions{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sum, sharded) {
			t.Errorf("batch=%v: shards=1 summary run diverged from single-kernel summary run", batch)
		}
	}
}

// TestStreamSummaryOnlyZeroOMAllocs is the alloc guard for summary mode:
// after arena warm-up, a 32k-message summary run must allocate far less
// than one per-message row array (≈2.3 MB here) — pinning that the O(M)
// accounting really folds into pooled accumulators.
func TestStreamSummaryOnlyZeroOMAllocs(t *testing.T) {
	cfg := Config{
		N:           64,
		Rate:        2e6,
		Duration:    30 * time.Millisecond,
		Fanout:      testConfig().Fanout,
		BufferCap:   8,
		Discipline:  DisciplinePushPull,
		MaxMessages: 32768,
		Batch:       true,
		SummaryOnly: true,
	}
	arena := NewArena()
	for i := 0; i < 2; i++ { // warm every pool at this shape
		if _, err := RunProbed(cfg, testNetConfig(), xrand.New(3), nil, arena, nil); err != nil {
			t.Fatal(err)
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := RunProbed(cfg, testNetConfig(), xrand.New(3), nil, arena, nil)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != cfg.MaxMessages {
		t.Fatalf("scheduled %d messages, want the %d cap", res.Scheduled, cfg.MaxMessages)
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 512*1024 {
		t.Errorf("warm summary run allocated %d bytes for %d messages, want < 512 KiB (no O(M) allocations)",
			grew, res.Scheduled)
	}
}

// TestPushPullNoDuplicateRepairs is the regression test for the pending-
// repair NACK dedupe: a member that receives several digests advertising
// the same missing id in one round must NACK it once, not once per digest.
//
// Construction: member 7 is partitioned away while member 0 publishes the
// only message and it saturates members 0–6. After the partition heals,
// all seven holders digest their buffers to the full view (fixed fanout 7)
// at the same round tick, so member 7 sees seven concurrent digests for
// the id. With the dedupe it sends one NACK and receives one repair —
// zero duplicate receipts; before the fix it NACKed every digest and the
// redundant repairs arrived as ~6 duplicates.
func TestPushPullNoDuplicateRepairs(t *testing.T) {
	for _, batch := range []bool{false, true} {
		cfg := Config{
			N:             8,
			Rate:          100000,
			Duration:      50 * time.Millisecond,
			Sources:       1,
			Fanout:        dist.NewFixed(7),
			BufferCap:     4,
			Discipline:    DisciplinePushPull,
			ActiveRounds:  8,
			RoundInterval: 10 * time.Millisecond, // expiry ≈ 80ms, far past the heal
			MaxMessages:   1,
			Batch:         batch,
		}
		net := simnet.Config{Latency: simnet.ConstantLatency{D: 2 * time.Millisecond}}
		heal := sim.Time(35 * time.Millisecond)
		res, err := RunProbed(cfg, net, xrand.New(1),
			func(r *core.NetRun) {
				r.Net.SetPartition(func(a, b simnet.NodeID) bool { return a == 7 || b == 7 })
				r.Kernel.At(heal, func() { r.Net.SetPartition(nil) })
			}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkLedger(t, res)
		if res.Published != 1 || res.FullyDelivered != 1 {
			t.Fatalf("batch=%v: published/fully-delivered = %d/%d, want 1/1 (repair must still reach member 7)",
				batch, res.Published, res.FullyDelivered)
		}
		if res.Duplicates != 0 {
			t.Errorf("batch=%v: %d duplicate receipts, want 0 — concurrent digests must not trigger duplicate repairs",
				batch, res.Duplicates)
		}
		if res.Ledger.RepairMisses != 0 {
			t.Errorf("batch=%v: %d repair misses in an eviction-free run, want 0", batch, res.Ledger.RepairMisses)
		}
	}
}
