package stream

import (
	"fmt"
	"sort"

	"gossipkit/internal/core"
	"gossipkit/internal/membership"
	"gossipkit/internal/obs"
	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
	"gossipkit/internal/xrand"
)

// Run executes one streaming run on a single kernel.
func Run(cfg Config, netCfg simnet.Config, r *xrand.RNG) (Result, error) {
	return RunProbed(cfg, netCfg, r, nil, nil, nil)
}

// RunProbed is Run with the full seam set: inject (non-nil) receives the
// core.NetRun injection facade before the clock starts, so scenario
// campaigns drive crash waves and burst loss while the stream is live;
// arena (non-nil) recycles run state across runs; probe (non-nil)
// collects streaming telemetry. Results are byte-identical whatever the
// arena or probe state.
//
// RNG layout: the publish schedule comes from r.Split(publishSplit) and
// the network stream from r.Split(netSplit) — splits never advance r —
// then the failure mask consumes r and the run continues on r. The same
// layout anchors the sharded executor's shards=1 equivalence.
func RunProbed(cfg Config, netCfg simnet.Config, r *xrand.RNG,
	inject func(*core.NetRun), arena *Arena, probe *obs.StreamProbe) (Result, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return Result{}, err
	}
	if arena == nil {
		arena = NewArena()
	}
	sh := arena.schedule(cfg, cfg.interval(netCfg), r)
	st := arena.net.Lease(cfg.N, netCfg, r.Split(netSplit))
	st.Kernel.SetBudget(budget(cfg, sh))
	sh.mask = st.Mask
	sh.mask.FillBernoulli(cfg.N, cfg.AliveRatio, 0, r)
	sh.view = cfg.View
	if sh.view == nil {
		sh.view = membership.NewFullView(cfg.N)
	}

	w := arena.worker(0)
	bits := arena.net.MessageBits(sh.M, cfg.N)
	var pend *core.MessageBits
	if cfg.Discipline == DisciplinePushPull {
		pend = arena.net.NackBits(sh.M, cfg.N)
	}
	w.reset(0, 0, cfg.N, st.Net, r, sh, bits, pend, probe, arena.publishLists(sh, 1, cfg.N)[0])
	probe.Attach(st.Net, &w.occ, &w.act)
	st.Net.RegisterAll(func(now sim.Time, msg simnet.Message) { w.onMessage(now, msg) })
	st.Net.RegisterBatchAll(func(now sim.Time, from, to simnet.NodeID, kind int32, ids []int32) {
		w.onBatch(now, from, to, kind, ids)
	})
	for id := 0; id < cfg.N; id++ {
		if !sh.mask.Alive(id) {
			st.Net.Crash(simnet.NodeID(id))
		}
	}
	w.armPublishes(st.Kernel)
	w.installTick(st.Kernel)

	if inject != nil {
		ws := []*worker{w}
		inject(core.NewNetRunFuncs(st.Kernel, st.Net, sh.view, sh.mask,
			func(id int) bool { return hasReceivedLatest(sh, ws, cfg.N, id, st.Kernel.Now()) },
			func() int { return w.firstTotal },
			nil,
			func(id int) {
				if id < 0 || id >= cfg.N {
					return
				}
				w.scenarioPublish(id, latestPublished(sh, st.Kernel.Now()), st.Kernel.Now())
			}))
	}

	if err := st.Kernel.RunAll(); err != nil {
		return Result{}, fmt.Errorf("stream: execution aborted: %w", err)
	}
	probe.Finish(st.Kernel.Now())
	return reduce(cfg, sh, []*worker{w}, st.Net.Stats(), st.Kernel.Now()), nil
}

// budget bounds the kernel event count — a runaway guard far above any
// real run: per-round gossip is at most every member emptying a full
// buffer to a generous fanout, plus the eager/flood per-receipt cascades.
func budget(cfg Config, sh *runShared) uint64 {
	perRound := uint64(cfg.N+1) * uint64(cfg.BufferCap*64+64)
	return uint64(sh.lastRound+16)*perRound + uint64(sh.M+1)*uint64(cfg.N+1)*8
}

// latestPublished returns the most recent schedule index published at or
// before now (-1 for none), skipping dead-source entries. Callers hold
// the barrier (workers parked) or the single kernel.
func latestPublished(sh *runShared, now sim.Time) int {
	i := sort.Search(sh.M, func(j int) bool { return sh.pubTime[j] > now }) - 1
	for ; i >= 0; i-- {
		if sh.pubState[i] == pubDone {
			return i
		}
	}
	return -1
}

// hasReceivedLatest reports whether id holds the most recently published
// message — the streaming reading of the single-rumor NetRun predicate
// (true before the first publish: there is nothing to lack).
func hasReceivedLatest(sh *runShared, ws []*worker, n, id int, now sim.Time) bool {
	latest := latestPublished(sh, now)
	if latest < 0 || id < 0 || id >= n {
		return true
	}
	for _, w := range ws {
		if id >= w.base && id < w.limit {
			return w.bits.Get(latest, id-w.base)
		}
	}
	return true
}

// reduce folds the workers' tallies into the run Result. The
// Result.Messages slice is the run's only O(M) allocation — and under
// Config.SummaryOnly it is skipped entirely: the same per-message pass
// folds outcome tallies, reliability moments, and loss attribution into
// the aggregate fields, so a summary run makes zero O(M) allocations and
// every non-Messages field is identical to a full run's.
func reduce(cfg Config, sh *runShared, ws []*worker, net simnet.Stats, end sim.Time) Result {
	res := Result{
		N:              cfg.N,
		AliveCount:     sh.mask.AliveCount(),
		Scheduled:      sh.M,
		Net:            net,
		End:            end.Duration(),
		MinReliability: 1,
		SummaryOnly:    cfg.SummaryOnly,
	}
	if !cfg.SummaryOnly {
		res.Messages = make([]MessageResult, sh.M)
	}
	for _, w := range ws {
		res.Delivered += w.firstTotal
		res.Ledger.Inserted += w.inserted
		res.Ledger.Evicted += w.evicted
		res.Ledger.Expired += w.expired
		res.Ledger.Resident += w.occ
		res.Ledger.RepairMisses += w.repairMiss
		res.DeliveryLatency.Merge(w.lat)
		if int(w.round) > res.Rounds {
			res.Rounds = int(w.round)
		}
	}
	var relSum float64
	for m := 0; m < sh.M; m++ {
		var sends, recvs int64
		var first, dups, evics int32
		for _, w := range ws {
			sends += w.sends[m]
			recvs += w.recvs[m]
			first += w.first[m]
			dups += w.dups[m]
			evics += w.evics[m]
		}
		res.Ledger.Sends += sends
		res.Ledger.Receipts += recvs
		res.Duplicates += int64(dups)
		drops := sends - recvs
		var rel float64
		if res.AliveCount > 0 {
			rel = float64(first) / float64(res.AliveCount)
		}
		var outcome MessageOutcome
		switch {
		case sh.pubState[m] == pubSkipped:
			outcome = MsgSkipped
			res.Skipped++
		case int(first) == res.AliveCount:
			outcome = MsgDelivered
			res.FullyDelivered++
		case evics > 0:
			outcome = MsgLostEviction
			res.LostEviction++
		case drops > 0:
			outcome = MsgLostDrop
			res.LostDrop++
		default:
			outcome = MsgDied
			res.Died++
		}
		if !cfg.SummaryOnly {
			res.Messages[m] = MessageResult{
				ID:          m,
				Source:      int(sh.source[m]),
				PublishedAt: sh.pubTime[m].Duration(),
				Delivered:   int(first),
				Reliability: rel,
				Duplicates:  int(dups),
				Evictions:   int(evics),
				Drops:       drops,
				Outcome:     outcome,
			}
		}
		if outcome == MsgSkipped {
			continue
		}
		res.Published++
		res.Reliability.Add(rel)
		relSum += rel
		if rel < res.MinReliability {
			res.MinReliability = rel
		}
	}
	if res.Published > 0 {
		res.MeanReliability = relSum / float64(res.Published)
	} else {
		res.MinReliability = 0
	}
	res.MessagesSent = res.Ledger.Sends
	return res
}
