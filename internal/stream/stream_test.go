package stream

import (
	"reflect"
	"testing"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
	"gossipkit/internal/obs"
	"gossipkit/internal/sim"
	"gossipkit/internal/simnet"
	"gossipkit/internal/xrand"
)

func testConfig() Config {
	return Config{
		N:        64,
		Rate:     200,
		Duration: 300 * time.Millisecond,
		Fanout:   dist.NewFixed(3),
	}
}

func testNetConfig() simnet.Config {
	return simnet.Config{Latency: simnet.UniformLatency{Lo: time.Millisecond, Hi: 5 * time.Millisecond}}
}

// checkLedger asserts the run's conservation identities: the copy
// identity, the engine/fabric tie, and the outcome partition.
func checkLedger(t *testing.T, res Result) {
	t.Helper()
	if got := res.Ledger.Evicted + res.Ledger.Expired + res.Ledger.Resident; got != res.Ledger.Inserted {
		t.Errorf("copy identity broken: evicted %d + expired %d + resident %d = %d, inserted %d",
			res.Ledger.Evicted, res.Ledger.Expired, res.Ledger.Resident, got, res.Ledger.Inserted)
	}
	// Send/receipt identities hold in id-entry units: a batched wire
	// message counts once on the fabric but carries many entries, and the
	// entry helpers collapse to the plain counters for per-id runs.
	if got := res.Net.SentEntries() + res.Net.DownEntries(); res.Ledger.Sends != got {
		t.Errorf("send identity broken: ledger sends %d, fabric sent-entries %d + down-entries %d = %d",
			res.Ledger.Sends, res.Net.SentEntries(), res.Net.DownEntries(), got)
	}
	if res.Ledger.Receipts != res.Net.DeliveredEntries() {
		t.Errorf("receipt identity broken: ledger receipts %d, fabric delivered-entries %d",
			res.Ledger.Receipts, res.Net.DeliveredEntries())
	}
	if got := res.FullyDelivered + res.LostEviction + res.LostDrop + res.Died; got != res.Published {
		t.Errorf("outcomes do not partition published: %d+%d+%d+%d = %d, published %d",
			res.FullyDelivered, res.LostEviction, res.LostDrop, res.Died, got, res.Published)
	}
	if got := res.Published + res.Skipped; got != res.Scheduled {
		t.Errorf("published %d + skipped %d = %d, schedule length %d",
			res.Published, res.Skipped, got, res.Scheduled)
	}
	if res.SummaryOnly {
		if res.Messages != nil {
			t.Errorf("summary-only run materialized %d per-message rows", len(res.Messages))
		}
	} else if len(res.Messages) != res.Scheduled {
		t.Errorf("per-message rows %d, schedule length %d", len(res.Messages), res.Scheduled)
	}
}

func TestRunLowLoadDeliversEverything(t *testing.T) {
	// Round-driven push re-gossips the buffer every round for the whole
	// active window, so at low load every message saturates the group.
	// (Eager forwards only at first receipt and plateaus near the
	// epidemic fixed point 1-e^{-c} — covered by the ledger tests.)
	cfg := testConfig()
	cfg.Discipline = DisciplinePush
	res, err := Run(cfg, testNetConfig(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Published == 0 {
		t.Fatal("no messages published")
	}
	if res.FullyDelivered != res.Published {
		t.Errorf("low load: %d of %d messages fully delivered", res.FullyDelivered, res.Published)
	}
	if res.MinReliability != 1 {
		t.Errorf("low load: min reliability %g, want 1", res.MinReliability)
	}
	if res.Ledger.Resident != 0 {
		t.Errorf("drained run left %d resident copies", res.Ledger.Resident)
	}
	checkLedger(t, res)
}

func TestRunLedgerAcrossDisciplines(t *testing.T) {
	for _, d := range []Discipline{DisciplineEager, DisciplinePush, DisciplinePushPull, DisciplineFlood} {
		t.Run(d.String(), func(t *testing.T) {
			cfg := testConfig()
			cfg.Discipline = d
			cfg.AliveRatio = 0.9
			cfg.BufferCap = 8
			cfg.Rate = 800
			res, err := Run(cfg, testNetConfig(), xrand.New(7))
			if err != nil {
				t.Fatal(err)
			}
			if res.Published == 0 {
				t.Fatal("no messages published")
			}
			checkLedger(t, res)
		})
	}
}

func TestRunLossAttributesDrops(t *testing.T) {
	cfg := testConfig()
	net := testNetConfig()
	net.Loss = simnet.BernoulliLoss{P: 0.4}
	res, err := Run(cfg, net, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	checkLedger(t, res)
	if res.Net.DroppedLoss == 0 {
		t.Fatal("lossy run dropped nothing")
	}
	var drops int64
	for _, m := range res.Messages {
		if m.Drops < 0 {
			t.Fatalf("message %d has negative drops %d", m.ID, m.Drops)
		}
		drops += m.Drops
	}
	if got := res.Ledger.Sends - res.Ledger.Receipts; drops != got {
		t.Errorf("per-message drops sum %d, ledger sends-receipts %d", drops, got)
	}
}

func TestRunDeterministicAcrossRepeatsAndArenas(t *testing.T) {
	cfg := testConfig()
	cfg.AliveRatio = 0.85
	cfg.BufferCap = 6
	a, err := Run(cfg, testNetConfig(), xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	arena := NewArena()
	for i := 0; i < 2; i++ {
		b, err := RunProbed(cfg, testNetConfig(), xrand.New(11), nil, arena, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("warm arena run %d diverged from cold run", i)
		}
	}
}

func TestShardedSingleShardMatchesRunProbed(t *testing.T) {
	for _, d := range []Discipline{DisciplineEager, DisciplinePush, DisciplinePushPull} {
		t.Run(d.String(), func(t *testing.T) {
			cfg := testConfig()
			cfg.Discipline = d
			cfg.AliveRatio = 0.9
			cfg.BufferCap = 8
			single, err := Run(cfg, testNetConfig(), xrand.New(5))
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := RunSharded(cfg, testNetConfig(), xrand.New(5), nil, nil, nil,
				core.ShardOptions{Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(single, sharded) {
				t.Fatal("shards=1 result diverged from single-kernel run")
			}
		})
	}
}

func TestShardedDeterministicAtFixedShardCount(t *testing.T) {
	cfg := testConfig()
	cfg.N = 96
	cfg.Discipline = DisciplinePush
	cfg.BufferCap = 8
	opts := core.ShardOptions{Shards: 3}
	a, err := RunSharded(cfg, testNetConfig(), xrand.New(9), nil, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	arena := NewArena()
	for i := 0; i < 2; i++ {
		b, err := RunSharded(cfg, testNetConfig(), xrand.New(9), nil, arena, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("sharded repeat %d diverged", i)
		}
		checkLedger(t, b)
	}
}

// TestShardCountStatisticalPin checks the cross-shard-count contract:
// the publish schedule and failure mask are identical for every shard
// count (so schedule length, sources, publish times, and skip pattern
// match exactly), and reliability stays statistically close.
func TestShardCountStatisticalPin(t *testing.T) {
	cfg := testConfig()
	cfg.N = 90
	cfg.AliveRatio = 0.9
	base, err := RunSharded(cfg, testNetConfig(), xrand.New(13), nil, nil, nil,
		core.ShardOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3} {
		res, err := RunSharded(cfg, testNetConfig(), xrand.New(13), nil, nil, nil,
			core.ShardOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		checkLedger(t, res)
		if res.AliveCount != base.AliveCount {
			t.Fatalf("shards=%d alive count %d, want %d", shards, res.AliveCount, base.AliveCount)
		}
		if len(res.Messages) != len(base.Messages) {
			t.Fatalf("shards=%d schedule length %d, want %d", shards, len(res.Messages), len(base.Messages))
		}
		for m := range res.Messages {
			if res.Messages[m].Source != base.Messages[m].Source ||
				res.Messages[m].PublishedAt != base.Messages[m].PublishedAt {
				t.Fatalf("shards=%d message %d schedule diverged", shards, m)
			}
		}
		if res.Published != base.Published || res.Skipped != base.Skipped {
			t.Fatalf("shards=%d published/skipped %d/%d, want %d/%d",
				shards, res.Published, res.Skipped, base.Published, base.Skipped)
		}
		if diff := res.MeanReliability - base.MeanReliability; diff > 0.05 || diff < -0.05 {
			t.Errorf("shards=%d mean reliability %g too far from %g",
				shards, res.MeanReliability, base.MeanReliability)
		}
	}
}

func TestStreamProbeCollectsCurves(t *testing.T) {
	cfg := testConfig()
	cfg.Rate = 500
	probe := obs.NewStream(obs.Options{CurveTick: 5 * time.Millisecond})
	res, err := RunProbed(cfg, testNetConfig(), xrand.New(2), nil, nil, probe)
	if err != nil {
		t.Fatal(err)
	}
	m := probe.Metrics()
	if len(m.Occupancy) == 0 || len(m.Published) == 0 {
		t.Fatal("probe collected no curve samples")
	}
	// Curves sample cumulative counters, so the final sample is the total.
	pub := m.Published[len(m.Published)-1]
	del := m.Delivered[len(m.Delivered)-1]
	if pub != int64(res.Published) {
		t.Errorf("probe published %d, result %d", pub, res.Published)
	}
	// Probe deliveries exclude source self-receipts.
	if del != int64(res.Delivered-res.Published) {
		t.Errorf("probe delivered %d, result %d non-origin receipts", del, res.Delivered-res.Published)
	}
	if m.Latency.Total != del {
		t.Errorf("latency histogram total %d, want %d", m.Latency.Total, del)
	}
	if m.Totals.Sent != res.Net.Sent {
		t.Errorf("probe fabric sent %d, result %d", m.Totals.Sent, res.Net.Sent)
	}

	// The probe must not perturb the stream.
	bare, err := Run(cfg, testNetConfig(), xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, res) {
		t.Fatal("probed run diverged from bare run")
	}
}

func TestStreamProbeShardedMerge(t *testing.T) {
	cfg := testConfig()
	cfg.N = 96
	cfg.Rate = 500
	probe := obs.NewStream(obs.Options{CurveTick: 5 * time.Millisecond})
	res, err := RunSharded(cfg, testNetConfig(), xrand.New(4), nil, nil, probe,
		core.ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := probe.Metrics()
	if len(m.Occupancy) == 0 {
		t.Fatal("merged probe has no occupancy curve")
	}
	if pub := m.Published[len(m.Published)-1]; pub != int64(res.Published) {
		t.Errorf("merged probe published %d, result %d", pub, res.Published)
	}
	if m.Totals.Sent != res.Net.Sent {
		t.Errorf("merged probe fabric sent %d, result %d", m.Totals.Sent, res.Net.Sent)
	}
}

func TestScenarioSeamPublish(t *testing.T) {
	cfg := testConfig()
	var nr *core.NetRun
	res, err := RunProbed(cfg, testNetConfig(), xrand.New(6),
		func(r *core.NetRun) {
			nr = r
			// Mid-stream burst: an extra publish wave at 100ms.
			r.Kernel.At(sim.Time(100*time.Millisecond), func() {
				for id := 0; id < 8; id++ {
					r.Publish(id)
				}
			})
		}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nr == nil {
		t.Fatal("inject hook never ran")
	}
	checkLedger(t, res)
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{N: 1, Rate: 1, Duration: time.Second, Fanout: dist.NewFixed(2)},
		{N: 8, Rate: 0, Duration: time.Second, Fanout: dist.NewFixed(2)},
		{N: 8, Rate: 1, Duration: 0, Fanout: dist.NewFixed(2)},
		{N: 8, Rate: 1, Duration: time.Second},
		{N: 8, Rate: 1, Duration: time.Second, Fanout: dist.NewFixed(2), Sources: 9},
		{N: 8, Rate: 1, Duration: time.Second, Fanout: dist.NewFixed(2), AliveRatio: 1.5},
		{N: 8, Rate: 1, Duration: time.Second, Fanout: dist.NewFixed(2), BufferCap: -1},
		{N: 8, Rate: 1, Duration: time.Second, Fanout: dist.NewFixed(2), ActiveRounds: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, testNetConfig(), xrand.New(1)); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
}
