package stream

import "gossipkit/internal/xrand"

// entry is one buffered rumor copy: the message id, a per-worker
// insertion sequence number (FIFO order and tiebreaks), and the duplicate
// receipts observed while buffered (the lpbcast eviction signal).
type entry struct {
	msg  int32
	seq  uint32
	dups int32
}

// buffers is one worker's flat rumor-buffer storage: row l (a block-local
// member index) occupies entries[l·cap : (l+1)·cap] with lens[l] live
// entries. Rows are compacted in place on expiry and replaced in place on
// eviction, so a warm arena redraws the whole structure without
// allocating.
type buffers struct {
	capacity int
	entries  []entry
	lens     []int32
}

// reset sizes the storage for n members of `capacity` entries each, all
// empty, reusing backing arrays when capacity allows.
func (b *buffers) reset(n, capacity int) {
	b.capacity = capacity
	need := n * capacity
	if cap(b.entries) >= need {
		b.entries = b.entries[:need]
	} else {
		b.entries = make([]entry, need)
	}
	if cap(b.lens) >= n {
		b.lens = b.lens[:n]
		clear(b.lens)
	} else {
		b.lens = make([]int32, n)
	}
}

// len returns member l's live entry count.
func (b *buffers) len(l int) int { return int(b.lens[l]) }

// row returns member l's live entries (aliasing the storage).
func (b *buffers) row(l int) []entry {
	base := l * b.capacity
	return b.entries[base : base+int(b.lens[l])]
}

// find returns the row index of message m in member l's buffer, or -1.
func (b *buffers) find(l int, m int32) int {
	for i, e := range b.row(l) {
		if e.msg == m {
			return i
		}
	}
	return -1
}

// bump increments the duplicate count of member l's row entry i.
func (b *buffers) bump(l, i int) { b.entries[l*b.capacity+i].dups++ }

// insert admits message m (insertion sequence seq) into member l's
// buffer. A non-full buffer appends; a full one replaces the policy's
// victim in place and reports its message id. pubRound indexes publish
// rounds by message id (the age signal). Only EvictRandom draws from rng.
func (b *buffers) insert(l int, m int32, seq uint32, policy EvictionPolicy, pubRound []int32, rng *xrand.RNG) (victim int32, evicted bool) {
	base := l * b.capacity
	n := int(b.lens[l])
	if n < b.capacity {
		b.entries[base+n] = entry{msg: m, seq: seq}
		b.lens[l]++
		return 0, false
	}
	row := b.entries[base : base+n]
	v := 0
	switch policy {
	case EvictFIFO:
		for i := 1; i < n; i++ {
			if row[i].seq < row[v].seq {
				v = i
			}
		}
	case EvictRandom:
		v = rng.Intn(n)
	case EvictAge:
		for i := 1; i < n; i++ {
			ri, rv := pubRound[row[i].msg], pubRound[row[v].msg]
			if ri < rv || (ri == rv && row[i].seq < row[v].seq) {
				v = i
			}
		}
	case EvictLpbcast:
		for i := 1; i < n; i++ {
			switch {
			case row[i].dups != row[v].dups:
				if row[i].dups > row[v].dups {
					v = i
				}
			case pubRound[row[i].msg] != pubRound[row[v].msg]:
				if pubRound[row[i].msg] < pubRound[row[v].msg] {
					v = i
				}
			case row[i].seq < row[v].seq:
				v = i
			}
		}
	}
	victim = row[v].msg
	row[v] = entry{msg: m, seq: seq}
	return victim, true
}

// expireRow compacts member l's buffer, dropping entries whose active
// window has closed at the given round (round ≥ pubRound+active), and
// returns the number dropped. Compaction is stable, preserving insertion
// order among survivors.
func (b *buffers) expireRow(l int, round, active int32, pubRound []int32) int {
	base := l * b.capacity
	n := int(b.lens[l])
	k := 0
	for i := 0; i < n; i++ {
		e := b.entries[base+i]
		if round >= pubRound[e.msg]+active {
			continue
		}
		b.entries[base+k] = e
		k++
	}
	b.lens[l] = int32(k)
	return n - k
}
