package genfunc

import (
	"math"
	"testing"
	"testing/quick"

	"gossipkit/internal/dist"
)

func TestOutbreakProbabilityPoissonEqualsS(t *testing.T) {
	// For Poisson fanout the offspring PGF equals the excess-degree PGF,
	// so Pr(outbreak) = S.
	for _, z := range []float64{1.5, 2.5, 4, 6} {
		for _, q := range []float64{0.5, 0.9, 1.0} {
			ob, err := OutbreakProbability(dist.NewPoisson(z), q)
			if err != nil {
				t.Fatal(err)
			}
			s, err := PoissonReliability(z, q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(ob-s) > 1e-8 {
				t.Errorf("z=%g q=%g: outbreak %.10f, S %.10f", z, q, ob, s)
			}
		}
	}
}

func TestOutbreakProbabilityFixedNoExtinction(t *testing.T) {
	// Fixed(k>=2) at q=1: every infected member produces exactly k
	// offspring; extinction is impossible.
	for _, k := range []int{2, 3, 5} {
		ob, err := OutbreakProbability(dist.NewFixed(k), 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ob-1) > 1e-9 {
			t.Errorf("Fixed(%d) q=1: outbreak %.10f, want 1", k, ob)
		}
	}
}

func TestOutbreakProbabilityFixedWithFailures(t *testing.T) {
	// Fixed(2), q=0.8: offspring ~ Bin(2, 0.8); extinction prob solves
	// η = (0.2 + 0.8η)², smallest root = 0.0625.
	ob, err := OutbreakProbability(dist.NewFixed(2), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - 0.0625
	if math.Abs(ob-want) > 1e-9 {
		t.Errorf("outbreak %.10f, want %.10f", ob, want)
	}
}

func TestOutbreakSubcritical(t *testing.T) {
	ob, err := OutbreakProbability(dist.NewPoisson(4), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if ob != 0 {
		t.Errorf("subcritical outbreak %.10f", ob)
	}
	if _, err := OutbreakProbability(dist.NewPoisson(4), -1); err == nil {
		t.Error("bad ratio accepted")
	}
}

func TestOutbreakShapeDependence(t *testing.T) {
	// Same mean 4, same q: Fixed has a strictly higher outbreak
	// probability than Poisson, which beats the heavy-tailed Geometric.
	q := 0.9
	obF, _ := OutbreakProbability(dist.NewFixed(4), q)
	obP, _ := OutbreakProbability(dist.NewPoisson(4), q)
	obG, _ := OutbreakProbability(dist.NewGeometric(0.2), q)
	if !(obF > obP && obP > obG) {
		t.Errorf("outbreak ordering violated: Fixed %.4f, Poisson %.4f, Geom %.4f", obF, obP, obG)
	}
}

func TestExpectedOneShotReachPoissonIsSSquared(t *testing.T) {
	for _, z := range []float64{2, 4, 6} {
		q := 0.9
		got, err := ExpectedOneShotReach(dist.NewPoisson(z), q)
		if err != nil {
			t.Fatal(err)
		}
		s, _ := PoissonReliability(z, q)
		if math.Abs(got-s*s) > 1e-8 {
			t.Errorf("z=%g: one-shot %.8f, want S² = %.8f", z, got, s*s)
		}
	}
}

func TestExpectedOneShotReachSubcritical(t *testing.T) {
	got, err := ExpectedOneShotReach(dist.NewPoisson(0.5), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("subcritical one-shot reach %.8f", got)
	}
}

func TestJointReliabilityNoLossMatchesEq11(t *testing.T) {
	p := dist.NewPoisson(4)
	a, err := JointReliability(p, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PoissonReliability(4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("loss=0: %.10f vs %.10f", a, b)
	}
}

func TestJointReliabilityLossThinsFanout(t *testing.T) {
	p := dist.NewPoisson(5)
	q := 0.8
	withLoss, err := JointReliability(p, q, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	thinned, err := PoissonReliability(5*0.75, q)
	if err != nil {
		t.Fatal(err)
	}
	if withLoss != thinned {
		t.Errorf("loss thinning: %.10f vs %.10f", withLoss, thinned)
	}
	noLoss, _ := JointReliability(p, q, 0)
	if withLoss >= noLoss {
		t.Error("loss did not reduce reliability")
	}
}

func TestJointReliabilityValidation(t *testing.T) {
	p := dist.NewPoisson(4)
	if _, err := JointReliability(p, 0.9, -0.1); err == nil {
		t.Error("negative loss accepted")
	}
	if _, err := JointReliability(p, 0.9, 1.5); err == nil {
		t.Error("loss > 1 accepted")
	}
	if _, err := JointReliability(p, 2, 0); err == nil {
		t.Error("bad ratio accepted")
	}
}

func TestJointCriticalLoss(t *testing.T) {
	// z=4, q=0.9: zq=3.6, loss_c = 1 - 1/3.6 ≈ 0.7222.
	lc, err := JointCriticalLoss(dist.NewPoisson(4), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lc-(1-1/3.6)) > 1e-12 {
		t.Errorf("critical loss %.6f", lc)
	}
	// At the critical loss the reliability is exactly 0.
	r, err := JointReliability(dist.NewPoisson(4), 0.9, lc)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("reliability at critical loss = %g", r)
	}
	// Just below it, positive.
	r2, _ := JointReliability(dist.NewPoisson(4), 0.9, lc-0.05)
	if r2 <= 0 {
		t.Errorf("reliability below critical loss = %g", r2)
	}
	// Subcritical configuration tolerates no loss.
	lc0, _ := JointCriticalLoss(dist.NewPoisson(1), 0.9)
	if lc0 != 0 {
		t.Errorf("subcritical critical loss = %g", lc0)
	}
}

func TestOutbreakQuickProperties(t *testing.T) {
	f := func(zRaw, qRaw uint16) bool {
		z := 0.2 + float64(zRaw%70)/10
		q := float64(qRaw%101) / 100
		ob, err := OutbreakProbability(dist.NewPoisson(z), q)
		if err != nil || ob < 0 || ob > 1 {
			return false
		}
		reach, err := ExpectedOneShotReach(dist.NewPoisson(z), q)
		if err != nil || reach < 0 || reach > ob+1e-12 {
			return false // one-shot reach cannot exceed outbreak prob
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOutbreakProbability(b *testing.B) {
	p := dist.NewPoisson(4)
	for i := 0; i < b.N; i++ {
		if _, err := OutbreakProbability(p, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}
