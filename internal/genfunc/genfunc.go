// Package genfunc implements the paper's analytic fault-tolerance model for
// gossip-based multicast: generalized-random-graph percolation via
// probability generating functions (Newman–Strogatz–Watts 2001, with the
// Callaway–Newman–Strogatz–Watts site-percolation extension for node
// failures).
//
// The gossip model Gossip(n, P, q) — n members, fanout distribution P, and
// nonfailed member ratio q — maps onto the random-graph ensemble ζ(n, P)
// with every node independently occupied (nonfailed) with probability q.
// The package computes, for arbitrary P:
//
//   - the critical nonfailed ratio q_c = 1/G1'(1)            (paper Eq. 3)
//   - the mean component size ⟨s⟩ below the transition        (paper Eq. 2)
//   - the reliability of gossiping R(q, P): the giant-component size as a
//     fraction of nonfailed members, obtained by solving the
//     self-consistency condition u = 1 − q + q·G1(u) and evaluating
//     S = 1 − G0(u)                                          (paper Eq. 4)
//
// Erratum handled here (see DESIGN.md §5): the paper prints the condition as
// u = 1 − F1(1) − F1(u); the correct Callaway et al. relation, which the
// paper's own Poisson result (Eq. 11) requires, is u = 1 − F1(1) + F1(u).
//
// The package also provides the Poisson closed forms of the paper's case
// study (Eqs. 10–12) and a directed "forward spread" predictor that models
// gossip as a directed reachability process rather than an undirected giant
// component; for Poisson fanout both coincide, which is one reason the
// paper's Poisson validation works as well as it does.
package genfunc

import (
	"errors"
	"fmt"
	"math"

	"gossipkit/internal/dist"
	"gossipkit/internal/numeric"
)

// ErrInvalidRatio is returned when a nonfailed ratio is outside [0, 1].
var ErrInvalidRatio = errors.New("genfunc: nonfailed ratio must be in [0, 1]")

// Model is the generating-function view of a fanout distribution. It is
// immutable and safe for concurrent use.
type Model struct {
	p dist.Distribution
}

// New returns the percolation model for fanout distribution p.
func New(p dist.Distribution) *Model {
	if p == nil {
		panic("genfunc: nil distribution")
	}
	return &Model{p: p}
}

// Dist returns the underlying fanout distribution.
func (m *Model) Dist() dist.Distribution { return m.p }

// G0 evaluates the degree generating function G0(x) = Σ p_k x^k.
func (m *Model) G0(x float64) float64 { return dist.PGF(m.p, x) }

// G0Prime evaluates G0'(x).
func (m *Model) G0Prime(x float64) float64 { return dist.PGFPrime(m.p, x) }

// G1 evaluates the excess-degree generating function
// G1(x) = G0'(x) / G0'(1).
func (m *Model) G1(x float64) float64 {
	mean := m.p.Mean()
	if mean == 0 {
		// No edges at all: every "excess" neighborhood is empty.
		return 1
	}
	return dist.PGFPrime(m.p, x) / mean
}

// G1Prime1 returns G1'(1) = G0”(1)/G0'(1), the mean excess degree. This is
// the branching factor of the component-exploration process.
func (m *Model) G1Prime1() float64 {
	mean := m.p.Mean()
	if mean == 0 {
		return 0
	}
	return dist.PGFPrime2(m.p, 1) / mean
}

// CriticalRatio returns the critical nonfailed member ratio
// q_c = 1/G1'(1) (paper Eq. 3): for q > q_c a giant component (and hence
// non-vanishing gossip reliability) exists. If the graph is subcritical even
// with no failures (G1'(1) <= 1), it returns +Inf.
func (m *Model) CriticalRatio() float64 {
	g := m.G1Prime1()
	if g <= 0 {
		return math.Inf(1)
	}
	qc := 1 / g
	return qc
}

// MeanComponentSize returns the mean size ⟨s⟩ of the component containing a
// randomly chosen node (paper Eq. 2):
//
//	⟨s⟩ = q[1 + q·G0'(1) / (1 − q·G1'(1))]
//
// It diverges at the critical point; at or beyond criticality it returns
// +Inf.
func (m *Model) MeanComponentSize(q float64) (float64, error) {
	if err := checkRatio(q); err != nil {
		return 0, err
	}
	den := 1 - q*m.G1Prime1()
	if den <= 0 {
		return math.Inf(1), nil
	}
	return q * (1 + q*m.G0Prime(1)/den), nil
}

// selfConsistentU solves u = 1 − q + q·G1(u) for the smallest root in
// [0, 1]. u is the probability that following a random edge leads to a
// finite (non-giant) branch. u = 1 is always a root; a smaller root exists
// exactly in the supercritical regime q·G1'(1) > 1.
func (m *Model) selfConsistentU(q float64) float64 {
	// Subcritical: only the trivial root.
	if q*m.G1Prime1() <= 1 {
		return 1
	}
	g := func(u float64) float64 { return 1 - q + q*m.G1(u) }
	// The map g is increasing and maps [0,1] into itself, so monotone
	// iteration from 0 converges to the smallest fixed point.
	u, err := numeric.FixedPoint(g, 0, 1, 1e-13, 500)
	if err == nil {
		return clamp01(u)
	}
	// Slow convergence near criticality: fall back to bracketed root
	// finding on h(u) = u − g(u). h(0) <= 0; h just below 1 is > 0 in the
	// supercritical regime.
	h := func(u float64) float64 { return u - g(u) }
	hi := 1.0
	for delta := 1e-9; delta < 0.5; delta *= 4 {
		if h(1-delta) > 0 {
			hi = 1 - delta
			break
		}
	}
	if hi == 1.0 {
		// Numerically indistinguishable from critical.
		return clamp01(u)
	}
	root, err := numeric.Brent(h, 0, hi, 1e-13)
	if err != nil {
		return clamp01(u)
	}
	return clamp01(root)
}

// Reliability returns R(q, P), the paper's reliability of gossiping: the
// expected fraction of nonfailed members reached by the source, computed as
// the giant-component size normalized by nonfailed members,
// S = 1 − G0(u) with u from the self-consistency condition (paper Eq. 4
// with the erratum fix; see package comment).
//
// The source is assumed nonfailed (the paper's assumption), so R is the
// probability that a random nonfailed member lies in the giant component.
func (m *Model) Reliability(q float64) (float64, error) {
	if err := checkRatio(q); err != nil {
		return 0, err
	}
	if q == 0 {
		return 0, nil
	}
	u := m.selfConsistentU(q)
	return clamp01(1 - m.G0(u)), nil
}

// GiantFractionAll returns the giant-component size as a fraction of ALL n
// members (Callaway et al.'s normalization), q·(1 − G0(u)).
func (m *Model) GiantFractionAll(q float64) (float64, error) {
	r, err := m.Reliability(q)
	if err != nil {
		return 0, err
	}
	return q * r, nil
}

func checkRatio(q float64) error {
	if math.IsNaN(q) || q < 0 || q > 1 {
		return fmt.Errorf("%w: got %g", ErrInvalidRatio, q)
	}
	return nil
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}

// ---------------------------------------------------------------------------
// Poisson closed forms (paper §4.3)

// PoissonCriticalRatio returns q_c = 1/z (paper Eq. 10): the nonfailed
// member ratio must exceed the reciprocal of the mean fanout.
func PoissonCriticalRatio(z float64) float64 {
	if z <= 0 {
		return math.Inf(1)
	}
	return 1 / z
}

// PoissonReliability solves S = 1 − e^{−zqS} (paper Eq. 11) for the
// reliability of gossiping under Poisson fanout Po(z) and nonfailed ratio q.
// It returns 0 in the subcritical regime zq <= 1.
func PoissonReliability(z, q float64) (float64, error) {
	if err := checkRatio(q); err != nil {
		return 0, err
	}
	if z < 0 {
		return 0, fmt.Errorf("genfunc: negative mean fanout %g", z)
	}
	a := z * q
	if a <= 1 {
		return 0, nil
	}
	f := func(s float64) float64 { return s - 1 + math.Exp(-a*s) }
	df := func(s float64) float64 { return 1 - a*math.Exp(-a*s) }
	// Root is in (0, 1]; f(eps) < 0 for small eps in the supercritical
	// regime, f(1) = exp(-a) > 0.
	lo := 1e-12
	if f(lo) >= 0 {
		return 0, nil // numerically critical
	}
	s, err := numeric.NewtonBracketed(f, df, lo, 1, 1e-14)
	if err != nil {
		return 0, err
	}
	return clamp01(s), nil
}

// PoissonMeanFanout inverts Eq. 11 into the paper's design equation
// (Eq. 12): the mean fanout z needed for reliability S at nonfailed ratio q,
// z = −ln(1 − S) / (qS). S must be in (0, 1) and q in (0, 1].
func PoissonMeanFanout(s, q float64) (float64, error) {
	if !(s > 0 && s < 1) {
		return 0, fmt.Errorf("genfunc: reliability %g outside (0,1)", s)
	}
	if !(q > 0 && q <= 1) {
		return 0, fmt.Errorf("%w: got %g", ErrInvalidRatio, q)
	}
	return -math.Log(1-s) / (q * s), nil
}

// ---------------------------------------------------------------------------
// Directed forward-spread predictor

// ForwardReach solves y = 1 − e^{−z·q·y} for the asymptotic fraction y of
// nonfailed members reached by *directed* forward gossip with mean fanout z
// (any fanout distribution: in the n→∞ limit each gossip message is an
// independent uniform edge, so only the mean matters). For Poisson fanout
// this coincides exactly with PoissonReliability; for other distributions it
// differs from the undirected giant-component model, quantifying the paper's
// modeling approximation (ablation A1 in DESIGN.md).
func ForwardReach(meanFanout, q float64) (float64, error) {
	return PoissonReliability(meanFanout, q)
}

// FiniteForwardReach solves the finite-n analogue of ForwardReach:
//
//	y = 1 − c^(q·n·y)   with   c = G_P(1 − 1/(n−1))
//
// where c is the probability that one gossiping member misses a fixed other
// member with its entire fanout. n must be >= 2.
func FiniteForwardReach(p dist.Distribution, n int, q float64) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("genfunc: group size %d too small", n)
	}
	if err := checkRatio(q); err != nil {
		return 0, err
	}
	c := dist.PGF(p, 1-1/float64(n-1))
	if c >= 1 {
		return 0, nil
	}
	lnC := math.Log(c)
	a := -q * float64(n) * lnC // y = 1 - e^{-a y}
	if a <= 1 {
		return 0, nil
	}
	f := func(y float64) float64 { return y - 1 + math.Exp(-a*y) }
	lo := 1e-12
	if f(lo) >= 0 {
		return 0, nil
	}
	y, err := numeric.Brent(f, lo, 1, 1e-14)
	if err != nil {
		return 0, err
	}
	return clamp01(y), nil
}
