package genfunc

import (
	"math"
	"testing"
	"testing/quick"

	"gossipkit/internal/dist"
)

func TestPoissonCriticalRatio(t *testing.T) {
	// Paper Eq. 10: q_c = 1/z.
	for _, z := range []float64{1, 2, 3.3, 4, 6.7, 10} {
		if got := PoissonCriticalRatio(z); math.Abs(got-1/z) > 1e-15 {
			t.Errorf("qc(%g) = %g, want %g", z, got, 1/z)
		}
	}
	if got := PoissonCriticalRatio(0); !math.IsInf(got, 1) {
		t.Errorf("qc(0) = %g, want +Inf", got)
	}
}

func TestGenericCriticalMatchesPoisson(t *testing.T) {
	// For Po(z): G1'(1) = z, so CriticalRatio = 1/z.
	for _, z := range []float64{0.5, 1, 2.5, 4, 8} {
		m := New(dist.NewPoisson(z))
		if got := m.CriticalRatio(); math.Abs(got-1/z) > 1e-9 {
			t.Errorf("generic qc(Po(%g)) = %g, want %g", z, got, 1/z)
		}
	}
}

func TestCriticalRatioFixedFanout(t *testing.T) {
	// Fixed(k): G1'(1) = k-1, so q_c = 1/(k-1).
	for _, k := range []int{2, 3, 5, 10} {
		m := New(dist.NewFixed(k))
		want := 1 / float64(k-1)
		if got := m.CriticalRatio(); math.Abs(got-want) > 1e-9 {
			t.Errorf("qc(Fixed(%d)) = %g, want %g", k, got, want)
		}
	}
	// Fixed(1): chain graph, never percolates -> +Inf.
	if got := New(dist.NewFixed(1)).CriticalRatio(); !math.IsInf(got, 1) {
		t.Errorf("qc(Fixed(1)) = %g, want +Inf", got)
	}
}

func TestPoissonReliabilitySatisfiesEq11(t *testing.T) {
	// S must satisfy S = 1 - e^{-zqS} to near machine precision.
	for _, z := range []float64{1.5, 2, 3, 4, 6} {
		for _, q := range []float64{0.3, 0.5, 0.8, 1.0} {
			s, err := PoissonReliability(z, q)
			if err != nil {
				t.Fatal(err)
			}
			if z*q <= 1 {
				if s != 0 {
					t.Errorf("subcritical z=%g q=%g: S = %g, want 0", z, q, s)
				}
				continue
			}
			if resid := s - (1 - math.Exp(-z*q*s)); math.Abs(resid) > 1e-12 {
				t.Errorf("z=%g q=%g: Eq.11 residual %g", z, q, resid)
			}
			if s <= 0 || s >= 1 {
				t.Errorf("z=%g q=%g: S = %g outside (0,1)", z, q, s)
			}
		}
	}
}

func TestPoissonReliabilityKnownValues(t *testing.T) {
	// zq = 3.6 is the paper's Fig. 6/7 operating point; paper rounds the
	// reliability to 0.967, exact solution ~0.9694.
	s, err := PoissonReliability(4.0, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.9694) > 5e-4 {
		t.Errorf("S(zq=3.6) = %.6f, want ~0.9694", s)
	}
	s2, err := PoissonReliability(6.0, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-s2) > 1e-12 {
		t.Errorf("S depends only on zq: %.12f vs %.12f", s, s2)
	}
	// Classic giant-component value at zq=2: S ≈ 0.7968.
	s3, _ := PoissonReliability(2.0, 1.0)
	if math.Abs(s3-0.79681213) > 1e-6 {
		t.Errorf("S(2) = %.8f, want 0.79681213", s3)
	}
}

func TestGenericReliabilityMatchesPoissonClosedForm(t *testing.T) {
	// The generic NSW/Callaway solver and the closed-form Poisson solver
	// must agree for Poisson fanout.
	for _, z := range []float64{1.2, 2, 3.5, 5, 6.7} {
		m := New(dist.NewPoisson(z))
		for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
			want, err := PoissonReliability(z, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Reliability(q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-8 {
				t.Errorf("z=%g q=%g: generic %.10f vs closed %.10f", z, q, got, want)
			}
		}
	}
}

func TestReliabilityMonotoneInQ(t *testing.T) {
	m := New(dist.NewPoisson(4))
	prev := -1.0
	for q := 0.0; q <= 1.0001; q += 0.05 {
		qq := math.Min(q, 1)
		s, err := m.Reliability(qq)
		if err != nil {
			t.Fatal(err)
		}
		if s < prev-1e-9 {
			t.Fatalf("reliability not monotone at q=%g: %g < %g", qq, s, prev)
		}
		prev = s
	}
}

func TestReliabilityMonotoneInFanout(t *testing.T) {
	prev := -1.0
	for z := 0.5; z <= 8; z += 0.25 {
		s, err := PoissonReliability(z, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if s < prev-1e-9 {
			t.Fatalf("reliability not monotone at z=%g", z)
		}
		prev = s
	}
}

func TestReliabilityZeroBelowCritical(t *testing.T) {
	// Paper Eq. 10 / Fig. 4-5 claim: below q = 1/z reliability vanishes.
	m := New(dist.NewPoisson(5))
	qc := m.CriticalRatio() // 0.2
	for _, q := range []float64{0, 0.05, 0.1, 0.15, 0.19} {
		s, err := m.Reliability(q)
		if err != nil {
			t.Fatal(err)
		}
		if s != 0 {
			t.Errorf("q=%g < qc=%g: S = %g, want 0", q, qc, s)
		}
	}
	for _, q := range []float64{0.25, 0.4, 1.0} {
		s, err := m.Reliability(q)
		if err != nil {
			t.Fatal(err)
		}
		if s <= 0 {
			t.Errorf("q=%g > qc=%g: S = %g, want > 0", q, qc, s)
		}
	}
}

func TestPoissonMeanFanoutInvertsReliability(t *testing.T) {
	// Eq. 12 round trip: z -> S -> z.
	for _, q := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		for _, s := range []float64{0.3, 0.5, 0.9, 0.99, 0.9999} {
			z, err := PoissonMeanFanout(s, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := PoissonReliability(z, q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-s) > 1e-9 {
				t.Errorf("q=%g S=%g: round-trip S = %.12f", q, s, got)
			}
		}
	}
}

func TestPoissonMeanFanoutPaperRange(t *testing.T) {
	// Fig. 2: at q=1, S=0.9999 needs z ≈ 9.21; at q=0.2 five times that.
	z1, err := PoissonMeanFanout(0.9999, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z1-9.2113) > 1e-3 {
		t.Errorf("z(S=0.9999, q=1) = %.4f, want ~9.2113", z1)
	}
	z02, err := PoissonMeanFanout(0.9999, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z02-5*z1) > 1e-9 {
		t.Errorf("z scales as 1/q: %g vs %g", z02, 5*z1)
	}
}

func TestPoissonMeanFanoutRejectsBadInput(t *testing.T) {
	for _, c := range []struct{ s, q float64 }{
		{0, 0.5}, {1, 0.5}, {1.2, 0.5}, {-0.1, 0.5}, {0.5, 0}, {0.5, 1.5},
	} {
		if _, err := PoissonMeanFanout(c.s, c.q); err == nil {
			t.Errorf("PoissonMeanFanout(%g, %g) accepted", c.s, c.q)
		}
	}
}

func TestMeanComponentSize(t *testing.T) {
	m := New(dist.NewPoisson(4))
	// Subcritical q: finite mean size.
	s, err := m.MeanComponentSize(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(s, 0) || s <= 0 {
		t.Errorf("subcritical mean size = %g", s)
	}
	// Supercritical: diverges (+Inf by convention).
	s, err = m.MeanComponentSize(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(s, 1) {
		t.Errorf("supercritical mean size = %g, want +Inf", s)
	}
}

func TestMeanComponentSizeDivergesAtCritical(t *testing.T) {
	// Approaching qc from below the mean size must blow up.
	m := New(dist.NewPoisson(5))
	qc := m.CriticalRatio()
	s1, _ := m.MeanComponentSize(qc * 0.5)
	s2, _ := m.MeanComponentSize(qc * 0.9)
	s3, _ := m.MeanComponentSize(qc * 0.99)
	if !(s1 < s2 && s2 < s3) {
		t.Errorf("mean size not increasing toward qc: %g %g %g", s1, s2, s3)
	}
	if s3 < 10 {
		t.Errorf("mean size near qc = %g, expected large", s3)
	}
}

func TestInvalidRatios(t *testing.T) {
	m := New(dist.NewPoisson(3))
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := m.Reliability(q); err == nil {
			t.Errorf("Reliability(%g) accepted", q)
		}
		if _, err := m.MeanComponentSize(q); err == nil {
			t.Errorf("MeanComponentSize(%g) accepted", q)
		}
		if _, err := PoissonReliability(3, q); err == nil {
			t.Errorf("PoissonReliability(3, %g) accepted", q)
		}
	}
}

func TestGiantFractionAll(t *testing.T) {
	m := New(dist.NewPoisson(4))
	q := 0.7
	r, err := m.Reliability(q)
	if err != nil {
		t.Fatal(err)
	}
	all, err := m.GiantFractionAll(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(all-q*r) > 1e-12 {
		t.Errorf("GiantFractionAll = %g, want q*R = %g", all, q*r)
	}
}

func TestFixedFanoutReliabilityKnownStructure(t *testing.T) {
	// Fixed(3), q=1: u solves u = G1(u) = u^2 -> u = 0 (smallest root),
	// S = 1 - G0(0) = 1. A 3-regular random graph is fully connected
	// in the NSW sense (no finite components in the limit).
	m := New(dist.NewFixed(3))
	s, err := m.Reliability(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("S(Fixed(3), q=1) = %.12f, want 1", s)
	}
}

func TestFixedFanoutReliabilityWithFailures(t *testing.T) {
	// Fixed(3), q=0.8: u = 1 - q + q u^2 has roots u=1 and u=(1-q)/q=0.25.
	// S = 1 - G0(u) = 1 - u^3 = 1 - 0.015625 = 0.984375.
	m := New(dist.NewFixed(3))
	s, err := m.Reliability(0.8)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Pow(0.25, 3)
	if math.Abs(s-want) > 1e-9 {
		t.Errorf("S(Fixed(3), q=0.8) = %.12f, want %.12f", s, want)
	}
}

func TestGeometricReliability(t *testing.T) {
	// Geometric has heavier tail than Poisson with same mean; its excess
	// degree branching factor G1'(1) = 2(1-p)/p is twice its mean, so the
	// critical q is half of Poisson's with equal mean.
	g := dist.NewGeometric(1.0 / 3) // mean 2
	m := New(g)
	wantQc := 1 / (2 * g.Mean())
	if got := m.CriticalRatio(); math.Abs(got-wantQc) > 1e-9 {
		t.Errorf("qc(Geom mean 2) = %g, want %g", got, wantQc)
	}
	mp := New(dist.NewPoisson(2))
	if got := mp.CriticalRatio(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("qc(Po(2)) = %g, want 0.5", got)
	}
}

func TestForwardReachEqualsPoissonClosedForm(t *testing.T) {
	for _, z := range []float64{1.5, 3, 4.5} {
		for _, q := range []float64{0.4, 0.9} {
			a, err := ForwardReach(z, q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := PoissonReliability(z, q)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("ForwardReach(%g,%g) = %g != %g", z, q, a, b)
			}
		}
	}
}

func TestFiniteForwardReachConvergesToAsymptotic(t *testing.T) {
	p := dist.NewPoisson(4)
	asym, err := ForwardReach(4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	prevGap := math.Inf(1)
	for _, n := range []int{100, 1000, 10000, 100000} {
		y, err := FiniteForwardReach(p, n, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		gap := math.Abs(y - asym)
		if gap > prevGap+1e-9 {
			t.Errorf("n=%d: finite-size gap %g did not shrink (prev %g)", n, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 1e-3 {
		t.Errorf("n=100000 gap to asymptotic = %g, want < 1e-3", prevGap)
	}
}

func TestFiniteForwardReachRejectsBadInput(t *testing.T) {
	p := dist.NewPoisson(3)
	if _, err := FiniteForwardReach(p, 1, 0.5); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := FiniteForwardReach(p, 100, -0.5); err == nil {
		t.Error("q=-0.5 accepted")
	}
}

func TestFiniteForwardReachSubcritical(t *testing.T) {
	p := dist.NewPoisson(0.5)
	y, err := FiniteForwardReach(p, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if y != 0 {
		t.Errorf("subcritical finite reach = %g, want 0", y)
	}
}

func TestReliabilityQuickProperty(t *testing.T) {
	// For any Poisson fanout and ratio, the generic solver stays in [0,1]
	// and satisfies its own self-consistency equation.
	f := func(zRaw, qRaw uint16) bool {
		z := 0.1 + float64(zRaw%80)/10 // 0.1 .. 8.0
		q := float64(qRaw%101) / 100   // 0 .. 1
		m := New(dist.NewPoisson(z))
		s, err := m.Reliability(q)
		if err != nil || s < 0 || s > 1 {
			return false
		}
		if z*q > 1.05 && s > 1e-6 {
			// Supercritical: verify S = 1 - G0(u), u = 1-q+q*G1(u)
			// indirectly through the Poisson closed form.
			want, err := PoissonReliability(z, q)
			if err != nil {
				return false
			}
			return math.Abs(s-want) < 1e-6
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMixtureReliabilityBetweenComponents(t *testing.T) {
	// A mixture's giant component lies between the pure components'.
	lo := New(dist.NewFixed(2))
	hi := New(dist.NewFixed(8))
	mix := New(dist.NewMixture(
		[]dist.Distribution{dist.NewFixed(2), dist.NewFixed(8)},
		[]float64{0.5, 0.5},
	))
	q := 0.9
	sLo, _ := lo.Reliability(q)
	sHi, _ := hi.Reliability(q)
	sMix, _ := mix.Reliability(q)
	if !(sLo <= sMix+1e-9 && sMix <= sHi+1e-9) {
		t.Errorf("mixture S=%g not between %g and %g", sMix, sLo, sHi)
	}
}

func BenchmarkPoissonReliability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := PoissonReliability(4, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenericReliabilityPoisson(b *testing.B) {
	m := New(dist.NewPoisson(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Reliability(0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenericReliabilityPowerLaw(b *testing.B) {
	m := New(dist.NewPowerLaw(2.5, 50))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Reliability(0.9); err != nil {
			b.Fatal(err)
		}
	}
}
