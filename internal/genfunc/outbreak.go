package genfunc

import (
	"fmt"
	"math"

	"gossipkit/internal/dist"
	"gossipkit/internal/numeric"
)

// OutbreakProbability returns the probability that a single multicast from
// the (never-failing) source "takes off" rather than dying out near the
// source: 1 − η, where η is the extinction probability of the forward
// branching process. With fanout distribution P and uniform targets over a
// group with nonfailed ratio q, each gossip message independently hits a
// nonfailed member with probability q, so the offspring PGF of the process
// is G_P(1 − q + q·x) and η is its smallest fixed point in [0, 1].
//
// Unlike the conditional coverage (ForwardReach, mean-only), the outbreak
// probability DOES depend on the shape of P: a Fixed(k≥2) fanout can never
// die out at q=1 (η=0), while Poisson always carries e^{−z} mass at zero
// fanout.
func OutbreakProbability(p dist.Distribution, q float64) (float64, error) {
	if err := checkRatio(q); err != nil {
		return 0, err
	}
	// Subcritical: extinction is certain when the mean offspring q·E[P]
	// is at most 1.
	if q*p.Mean() <= 1 {
		return 0, nil
	}
	g := func(eta float64) float64 { return dist.PGF(p, 1-q+q*eta) }
	// Monotone iteration from 0 converges to the smallest fixed point.
	eta, err := numeric.FixedPoint(g, 0, 1, 1e-13, 500)
	if err != nil {
		// Near-critical slow convergence: bisect h(η) = η − g(η),
		// negative at 0, positive just below 1 in the supercritical
		// regime.
		h := func(x float64) float64 { return x - g(x) }
		hi := 1.0
		for delta := 1e-9; delta < 0.5; delta *= 4 {
			if h(1-delta) > 0 {
				hi = 1 - delta
				break
			}
		}
		if hi < 1 {
			if root, err2 := numeric.Brent(h, 0, hi, 1e-13); err2 == nil {
				eta = root
			}
		}
	}
	return clamp01(1 - eta), nil
}

// ExpectedOneShotReach returns the expected fraction of nonfailed members
// one single multicast delivers to: Pr(outbreak) × conditional coverage.
// The conditional coverage is the giant out-component fraction, which for
// uniform-target gossip depends only on the mean fanout (ForwardReach);
// the outbreak probability depends on the full shape of P. For Poisson
// fanout both factors equal S, giving the S² of ablation A6.
func ExpectedOneShotReach(p dist.Distribution, q float64) (float64, error) {
	ob, err := OutbreakProbability(p, q)
	if err != nil {
		return 0, err
	}
	if ob == 0 {
		return 0, nil
	}
	cover, err := ForwardReach(p.Mean(), q)
	if err != nil {
		return 0, err
	}
	return ob * cover, nil
}

// JointReliability extends the paper's site-percolation model with bond
// percolation for message loss: each member is nonfailed with probability
// q (site) and each gossip message independently survives the network with
// probability 1−loss (bond). For uniform-target gossip, loss simply thins
// the effective mean fanout, so the giant out-component fraction solves
//
//	y = 1 − e^{−z·q·(1−loss)·y}
//
// with z the mean of P. This is the analytic counterpart of running
// core.ExecuteOnNetwork with simnet.BernoulliLoss.
func JointReliability(p dist.Distribution, q, loss float64) (float64, error) {
	if err := checkRatio(q); err != nil {
		return 0, err
	}
	if loss < 0 || loss > 1 || math.IsNaN(loss) {
		return 0, fmt.Errorf("genfunc: loss probability %g outside [0,1]", loss)
	}
	return PoissonReliability(p.Mean()*(1-loss), q)
}

// JointCriticalLoss returns the maximum message-loss probability the
// configuration tolerates before reliability collapses: from z·q·(1−loss)
// = 1, loss_c = 1 − 1/(z·q). It returns 0 when the configuration is
// already subcritical with no loss.
func JointCriticalLoss(p dist.Distribution, q float64) (float64, error) {
	if err := checkRatio(q); err != nil {
		return 0, err
	}
	a := p.Mean() * q
	if a <= 1 {
		return 0, nil
	}
	return 1 - 1/a, nil
}
