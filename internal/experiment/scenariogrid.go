package experiment

import (
	"gossipkit/internal/core"
	"gossipkit/internal/dist"
	"gossipkit/internal/scenario"
)

// ScenarioGrid (S1) sweeps the bundled fault-injection campaigns over the
// discrete-event simulator and plots, per scenario, the measured
// reliability against the paper's static-q prediction (Eq. 11) evaluated
// both at the initial q and at the end-of-run effective q. Scenarios where
// the static curve and the measurement diverge are exactly the fault
// processes the paper's model cannot express: time-varying crash waves,
// partitions, and loss bursts interacting with the spread's timing.
func ScenarioGrid(cfg Config) (*Figure, error) {
	f := &Figure{
		ID:     "scenario-grid",
		Title:  "Time-varying fault campaigns vs the static-q model (n=1000, f=5.0)",
		XLabel: "scenario index",
		YLabel: "reliability",
	}
	suite := scenario.DefaultSuite()
	seeds := cfg.runs(20, 3)
	sweepCfg := scenario.SweepConfig{
		Run: scenario.RunConfig{
			Params:            core.Params{N: 1000, Fanout: dist.NewPoisson(5), AliveRatio: 1},
			PartialViewCopies: 2,
		},
		Seeds:    seeds,
		BaseSeed: cfg.Seed,
	}
	res, err := scenario.SweepCtx(cfg.ctx(), suite, sweepCfg, nil)
	if err != nil {
		return nil, err
	}
	measured := Series{Name: "measured reliability"}
	survivors := Series{Name: "survivor reliability"}
	static := Series{Name: "static-q analysis (Eq. 11)"}
	effective := Series{Name: "effective-q analysis"}
	for i, s := range res.Scenarios {
		x := float64(i)
		measured.X = append(measured.X, x)
		measured.Y = append(measured.Y, s.Reliability.Mean)
		survivors.X = append(survivors.X, x)
		survivors.Y = append(survivors.Y, s.SurvivorReliability.Mean)
		static.X = append(static.X, x)
		static.Y = append(static.Y, s.StaticPrediction)
		effective.X = append(effective.X, x)
		effective.Y = append(effective.Y, s.EffectivePrediction)
		f.Note("x=%d %s: rel %.4f, survivors %.4f, static %.4f (gap %+.4f), effective %.4f (gap %+.4f)",
			i, s.Scenario, s.Reliability.Mean, s.SurvivorReliability.Mean,
			s.StaticPrediction, s.StaticGap, s.EffectivePrediction, s.EffectiveGap)
	}
	f.Series = append(f.Series, measured, survivors, static, effective)
	return f, nil
}
