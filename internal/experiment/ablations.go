package experiment

import (
	"fmt"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
	"gossipkit/internal/genfunc"
	"gossipkit/internal/membership"
	"gossipkit/internal/numeric"
	"gossipkit/internal/stats"
	"gossipkit/internal/xrand"
)

// AblationFanoutShape (A1) probes the paper's generality claim: the
// undirected generalized-random-graph model says the giant component
// depends on the full fanout distribution (through G1), while ideal
// uniform-target gossip reach is a directed process whose giant
// out-component depends only on the mean fanout. We sweep q for three
// distributions with equal mean 4 — Poisson, Fixed, Geometric — and plot
// the simulated giant out-component against both predictors.
func AblationFanoutShape(cfg Config) (*Figure, error) {
	f := &Figure{
		ID:     "ablation-fanout-shape",
		Title:  "Fanout-distribution shape: simulation vs undirected model vs forward-spread model (mean fanout 4)",
		XLabel: "nonfailed ratio q",
		YLabel: "reliability S",
	}
	distros := []dist.Distribution{
		dist.NewPoisson(4),
		dist.NewFixed(4),
		dist.NewGeometric(0.2), // mean (1-p)/p = 4
	}
	qs := numeric.Linspace(0.15, 1.0, 12)
	runs := cfg.runs(20, 3)
	for di, d := range distros {
		sim := Series{Name: d.Name() + " simulation"}
		nsw := Series{Name: d.Name() + " undirected model"}
		fwd := Series{Name: d.Name() + " forward model"}
		m := genfunc.New(d)
		var maxNSWGap, maxFwdGap float64
		for qi, q := range qs {
			p := core.Params{N: 2000, Fanout: d, AliveRatio: q}
			est, err := core.EstimateComponentReliabilityCtx(cfg.ctx(), p, runs, cfg.Seed^uint64(di*100+qi), 0, nil)
			if err != nil {
				return nil, err
			}
			u, err := m.Reliability(q)
			if err != nil {
				return nil, err
			}
			fr, err := genfunc.ForwardReach(d.Mean(), q)
			if err != nil {
				return nil, err
			}
			sim.X = append(sim.X, q)
			sim.Y = append(sim.Y, est.Mean)
			nsw.X = append(nsw.X, q)
			nsw.Y = append(nsw.Y, u)
			fwd.X = append(fwd.X, q)
			fwd.Y = append(fwd.Y, fr)
			if g := abs(est.Mean - u); g > maxNSWGap {
				maxNSWGap = g
			}
			if g := abs(est.Mean - fr); g > maxFwdGap {
				maxFwdGap = g
			}
		}
		f.Series = append(f.Series, sim, nsw, fwd)
		f.Note("%s: max |sim − undirected| = %.4f, max |sim − forward| = %.4f",
			d.Name(), maxNSWGap, maxFwdGap)
	}
	f.Note("for Poisson both models coincide; for Fixed/Geometric the forward model tracks the simulation")
	return f, nil
}

// AblationCriticalPoint (A2) zooms into the phase transition: reliability
// vs q around q_c = 1/z for several mean fanouts, with the analytic curve.
func AblationCriticalPoint(cfg Config) (*Figure, error) {
	f := &Figure{
		ID:     "ablation-critical-point",
		Title:  "Phase transition at q_c = 1/z (n = 2000)",
		XLabel: "nonfailed ratio q",
		YLabel: "reliability S",
	}
	runs := cfg.runs(20, 3)
	for zi, z := range []float64{2, 4, 6} {
		sim := Series{Name: fmt.Sprintf("z=%g simulation", z)}
		ana := Series{Name: fmt.Sprintf("z=%g analysis", z)}
		qc := genfunc.PoissonCriticalRatio(z)
		for qi, q := range numeric.Linspace(0.02, min(3*qc, 1), 15) {
			p := core.Params{N: 2000, Fanout: dist.NewPoisson(z), AliveRatio: q}
			est, err := core.EstimateComponentReliabilityCtx(cfg.ctx(), p, runs, cfg.Seed^uint64(zi*64+qi), 0, nil)
			if err != nil {
				return nil, err
			}
			want, err := genfunc.PoissonReliability(z, q)
			if err != nil {
				return nil, err
			}
			sim.X = append(sim.X, q)
			sim.Y = append(sim.Y, est.Mean)
			ana.X = append(ana.X, q)
			ana.Y = append(ana.Y, want)
		}
		f.Series = append(f.Series, sim, ana)
		f.Note("z=%g: q_c = %.4f", z, qc)
	}
	return f, nil
}

// AblationFailureMask (A3) contrasts the two readings of "t executions
// under failures": one mask fixed for all 20 executions (the paper's
// Binomial model) vs a fresh mask per execution. Resampling shifts the
// receipt distribution left because a member is dead (and cannot receive)
// in ~(1−q) of the executions.
func AblationFailureMask(cfg Config) (*Figure, error) {
	f := &Figure{
		ID:     "ablation-failure-mask",
		Title:  "Receipt distribution: fixed vs resampled failure mask (n=2000, f=5.0, q=0.6, t=20)",
		XLabel: "k (receipts of 20)",
		YLabel: "Pr(X = k)",
	}
	base := core.SuccessParams{
		Params: core.Params{
			N:          2000,
			Fanout:     dist.NewPoisson(5),
			AliveRatio: 0.6,
		},
		Executions:  20,
		Simulations: cfg.runs(60, 5),
	}
	fixed, err := core.RunSuccessCtx(cfg.ctx(), base, cfg.Seed^0xA3, 0, nil)
	if err != nil {
		return nil, err
	}
	resampled := base
	resampled.ResampleMask = true
	res, err := core.RunSuccessCtx(cfg.ctx(), resampled, cfg.Seed^0xA4, 0, nil)
	if err != nil {
		return nil, err
	}
	sFixed := Series{Name: "fixed mask (paper model)"}
	sRes := Series{Name: "resampled mask"}
	for k := 0; k <= 20; k++ {
		sFixed.X = append(sFixed.X, float64(k))
		sFixed.Y = append(sFixed.Y, fixed.ReceiptHistogram.Freq(k))
		sRes.X = append(sRes.X, float64(k))
		sRes.Y = append(sRes.Y, res.ReceiptHistogram.Freq(k))
	}
	f.Series = append(f.Series, sFixed, sRes)
	meanOf := func(o core.SuccessOutcome) float64 {
		var sum, tot float64
		for k := 0; k <= 20; k++ {
			c := float64(o.ReceiptHistogram.Count(k))
			sum += float64(k) * c
			tot += c
		}
		return sum / tot
	}
	f.Note("mean X: fixed = %.2f, resampled = %.2f (≈ q × fixed + survivor bias)", meanOf(fixed), meanOf(res))
	return f, nil
}

// AblationFiniteSize (A4) measures how fast the simulation converges to
// the asymptotic model as n grows, at fixed z·q = 3.6 (the paper's Fig. 6/7
// operating point).
func AblationFiniteSize(cfg Config) (*Figure, error) {
	f := &Figure{
		ID:     "ablation-finite-size",
		Title:  "Finite-size error |simulation − model| at f=4.0, q=0.9",
		XLabel: "group size n",
		YLabel: "absolute error",
	}
	want, err := genfunc.PoissonReliability(4.0, 0.9)
	if err != nil {
		return nil, err
	}
	runs := cfg.runs(40, 5)
	errSeries := Series{Name: "|sim − Eq.11|"}
	finite := Series{Name: "|finite-n forward model − Eq.11|"}
	for ni, n := range []int{100, 250, 500, 1000, 2500, 5000, 10000} {
		p := core.Params{N: n, Fanout: dist.NewPoisson(4), AliveRatio: 0.9}
		est, err := core.EstimateComponentReliabilityCtx(cfg.ctx(), p, runs, cfg.Seed^uint64(ni*7+1), 0, nil)
		if err != nil {
			return nil, err
		}
		errSeries.X = append(errSeries.X, float64(n))
		errSeries.Y = append(errSeries.Y, abs(est.Mean-want))
		fy, err := genfunc.FiniteForwardReach(dist.NewPoisson(4), n, 0.9)
		if err != nil {
			return nil, err
		}
		finite.X = append(finite.X, float64(n))
		finite.Y = append(finite.Y, abs(fy-want))
	}
	f.Series = append(f.Series, errSeries, finite)
	f.Note("model error shrinks with n: the paper's observation that 'modeling works better in larger scale systems'")
	return f, nil
}

// AblationPartialView (A5) replaces the full membership view with
// SCAMP-style partial views of growing size and measures the reliability
// penalty relative to the model (which assumes uniform target selection).
func AblationPartialView(cfg Config) (*Figure, error) {
	f := &Figure{
		ID:     "ablation-partial-view",
		Title:  "Partial membership views vs the full-view assumption (n=1000, f=4.0, q=0.9)",
		XLabel: "SCAMP extra copies c (view size ~ (c+1)·ln n)",
		YLabel: "reliability S",
	}
	want, err := genfunc.PoissonReliability(4.0, 0.9)
	if err != nil {
		return nil, err
	}
	runs := cfg.runs(20, 3)
	sim := Series{Name: "partial-view simulation"}
	ana := Series{Name: "full-view analysis (Eq. 11)"}
	meanViews := make([]float64, 0, 4)
	for ci, c := range []int{0, 1, 2, 3} {
		r := xrand.New(cfg.Seed ^ uint64(0xA5+ci))
		pv := membership.NewPartialViews(1000, c, r)
		pv.Shuffle(10, 3, r)
		p := core.Params{
			N:          1000,
			Fanout:     dist.NewPoisson(4),
			AliveRatio: 0.9,
			View:       pv,
		}
		est, err := core.EstimateComponentReliabilityCtx(cfg.ctx(), p, runs, cfg.Seed^uint64(ci+77), 0, nil)
		if err != nil {
			return nil, err
		}
		sim.X = append(sim.X, float64(c))
		sim.Y = append(sim.Y, est.Mean)
		ana.X = append(ana.X, float64(c))
		ana.Y = append(ana.Y, want)
		meanViews = append(meanViews, pv.Stats().MeanOut)
	}
	f.Series = append(f.Series, sim, ana)
	f.Note("mean view sizes: %v", fmt.Sprint(meanViews))
	f.Note("full-view model value: %.4f", want)
	return f, nil
}

// AblationReachVsGiant (A6) quantifies the difference between the two
// reliability semantics: the giant out-component (the paper's simulated
// metric, matching Eq. 11) and the mean directed source reach (what one
// real multicast delivers), which carries the early-die-out mass and
// averages ≈ S² for Poisson fanout.
func AblationReachVsGiant(cfg Config) (*Figure, error) {
	f := &Figure{
		ID:     "ablation-reach-vs-giant",
		Title:  "Giant out-component vs directed source reach (n=2000, q=0.9)",
		XLabel: "mean fanout f",
		YLabel: "reliability",
	}
	runs := cfg.runs(60, 5)
	giant := Series{Name: "giant out-component (paper metric)"}
	reach := Series{Name: "mean source reach (protocol metric)"}
	anaS := Series{Name: "analysis S (Eq. 11)"}
	anaS2 := Series{Name: "analysis S²"}
	q := 0.9
	for fi, fanout := range numeric.Arange(1.5, 6.5, 0.5) {
		p := core.Params{N: 2000, Fanout: dist.NewPoisson(fanout), AliveRatio: q}
		est, err := core.EstimateComponentReliabilityCtx(cfg.ctx(), p, runs, cfg.Seed^uint64(fi*31), 0, nil)
		if err != nil {
			return nil, err
		}
		s, err := genfunc.PoissonReliability(fanout, q)
		if err != nil {
			return nil, err
		}
		giant.X = append(giant.X, fanout)
		giant.Y = append(giant.Y, est.Mean)
		reach.X = append(reach.X, fanout)
		reach.Y = append(reach.Y, est.MeanSourceReach)
		anaS.X = append(anaS.X, fanout)
		anaS.Y = append(anaS.Y, s)
		anaS2.X = append(anaS2.X, fanout)
		anaS2.Y = append(anaS2.Y, s*s)
	}
	f.Series = append(f.Series, giant, reach, anaS, anaS2)
	rmseGiant, err := stats.RMSE(giant.Y, anaS.Y)
	if err != nil {
		return nil, err
	}
	rmseReach, err := stats.RMSE(reach.Y, anaS2.Y)
	if err != nil {
		return nil, err
	}
	f.Note("RMSE(giant, S) = %.4f; RMSE(source reach, S²) = %.4f", rmseGiant, rmseReach)
	f.Note("a single multicast succeeds with prob ≈ S and then covers S of the alive members")
	return f, nil
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
