package experiment

import (
	"fmt"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
	"gossipkit/internal/genfunc"
	"gossipkit/internal/numeric"
	"gossipkit/internal/stats"
)

// paperFanoutSweep is the paper's mean-fanout sweep: "varied from 1.10 to
// 6.7 with an incremental step 0.4" (§5.1) — 15 points.
func paperFanoutSweep() []float64 { return numeric.Arange(1.1, 6.7, 0.4) }

// Fig2 reproduces the paper's Fig. 2: the mean fanout z required for a
// target reliability S under q ∈ {0.2, 0.4, 0.6, 0.8, 1.0}, from the design
// equation z = −ln(1−S)/(qS) (Eq. 12). Pure analysis; the reliability axis
// spans the paper's quoted range 0.1111–0.9999.
func Fig2(cfg Config) (*Figure, error) {
	f := &Figure{
		ID:     "fig2",
		Title:  "Mean fanout vs reliability of gossiping under various nonfailed node ratio",
		XLabel: "reliability of gossiping S",
		YLabel: "mean fanout z",
	}
	ss := numeric.Linspace(0.1111, 0.9999, 60)
	for _, q := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		series := Series{Name: fmt.Sprintf("q=%.1f", q)}
		for _, s := range ss {
			z, err := genfunc.PoissonMeanFanout(s, q)
			if err != nil {
				return nil, err
			}
			series.X = append(series.X, s)
			series.Y = append(series.Y, z)
		}
		f.Series = append(f.Series, series)
	}
	// Headline checks the paper's plot shows: z(S=0.9999, q=1) ≈ 9.2 and
	// the q=0.2 curve tops out near 46.
	zTop, err := genfunc.PoissonMeanFanout(0.9999, 0.2)
	if err != nil {
		return nil, err
	}
	f.Note("z(S=0.9999, q=0.2) = %.2f (paper's axis tops at 50)", zTop)
	zOne, err := genfunc.PoissonMeanFanout(0.9999, 1.0)
	if err != nil {
		return nil, err
	}
	f.Note("z(S=0.9999, q=1.0) = %.2f", zOne)
	return f, nil
}

// Fig3 reproduces the paper's Fig. 3: the minimum number of executions t
// for a required success probability p_s = 0.999, as a function of the
// per-execution reliability S (Eq. 6). Pure analysis.
func Fig3(cfg Config) (*Figure, error) {
	f := &Figure{
		ID:     "fig3",
		Title:  "Minimum times of executions for the required probability of gossiping success",
		XLabel: "reliability of gossiping S",
		YLabel: "required minimum executions t",
	}
	const ps = 0.999
	series := Series{Name: fmt.Sprintf("ps=%.3f", ps)}
	for _, s := range numeric.Linspace(0.25, 0.999, 60) {
		t, err := stats.MinTrials(ps, s)
		if err != nil {
			return nil, err
		}
		series.X = append(series.X, s)
		series.Y = append(series.Y, float64(t))
	}
	f.Series = append(f.Series, series)
	t967, err := stats.MinTrials(ps, 0.967)
	if err != nil {
		return nil, err
	}
	f.Note("t(S=0.967) = %d (paper: 'greater than three' with its rounding)", t967)
	t25, err := stats.MinTrials(ps, 0.25)
	if err != nil {
		return nil, err
	}
	f.Note("t(S=0.25) = %d (left edge of the paper's axis, ~20)", t25)
	return f, nil
}

// reliabilityFigure is the shared engine of Figs. 4a/4b/5a/5b: for each q,
// sweep the mean fanout and plot simulated reliability (giant-component
// semantics, the paper's metric) against the Eq. 11 analysis.
func reliabilityFigure(cfg Config, id string, n int, qs []float64) (*Figure, error) {
	f := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("Gossiping simulation (nodes = %d)", n),
		XLabel: "mean fanout f",
		YLabel: "reliability of gossiping S",
	}
	runs := cfg.runs(20, 3)
	sweep := paperFanoutSweep()
	var maxGap float64
	for qi, q := range qs {
		sim := Series{Name: fmt.Sprintf("q=%.1f simulation", q)}
		ana := Series{Name: fmt.Sprintf("q=%.1f analysis", q)}
		for fi, fanout := range sweep {
			p := core.Params{
				N:          n,
				Fanout:     dist.NewPoisson(fanout),
				AliveRatio: q,
			}
			seed := cfg.Seed ^ uint64(qi*1000+fi) ^ uint64(n)
			est, err := core.EstimateComponentReliabilityCtx(cfg.ctx(), p, runs, seed, 0, nil)
			if err != nil {
				return nil, err
			}
			want, err := genfunc.PoissonReliability(fanout, q)
			if err != nil {
				return nil, err
			}
			sim.X = append(sim.X, fanout)
			sim.Y = append(sim.Y, est.Mean)
			ana.X = append(ana.X, fanout)
			ana.Y = append(ana.Y, want)
			if gap := abs(est.Mean - want); gap > maxGap {
				maxGap = gap
			}
		}
		rmse, err := stats.RMSE(sim.Y, ana.Y)
		if err != nil {
			return nil, err
		}
		f.Note("q=%.1f: RMSE(sim, analysis) = %.4f over %d fanouts × %d runs", q, rmse, len(sweep), runs)
		f.Series = append(f.Series, sim, ana)
	}
	f.Note("max |sim − analysis| across all points = %.4f", maxGap)
	f.Note("critical points hold: S > 0 requires q > 1/f (Eq. 10)")
	return f, nil
}

// Fig4a reproduces the paper's Fig. 4a (n=1000, q ∈ {0.1, 0.3, 0.5, 1.0}).
func Fig4a(cfg Config) (*Figure, error) {
	return reliabilityFigure(cfg, "fig4a", 1000, []float64{0.1, 0.3, 0.5, 1.0})
}

// Fig4b reproduces the paper's Fig. 4b (n=1000, q ∈ {0.4, 0.6, 0.8, 1.0}).
func Fig4b(cfg Config) (*Figure, error) {
	return reliabilityFigure(cfg, "fig4b", 1000, []float64{0.4, 0.6, 0.8, 1.0})
}

// Fig5a reproduces the paper's Fig. 5a (n=5000, q ∈ {0.1, 0.3, 0.5, 1.0}).
func Fig5a(cfg Config) (*Figure, error) {
	return reliabilityFigure(cfg, "fig5a", 5000, []float64{0.1, 0.3, 0.5, 1.0})
}

// Fig5b reproduces the paper's Fig. 5b (n=5000, q ∈ {0.4, 0.6, 0.8, 1.0}).
func Fig5b(cfg Config) (*Figure, error) {
	return reliabilityFigure(cfg, "fig5b", 5000, []float64{0.4, 0.6, 0.8, 1.0})
}

// successFigure is the shared engine of Figs. 6/7: run 20 executions × 100
// simulations at n=2000, histogram the per-member receipt count X, and
// overlay the Binomial references — both the paper's B(20, S) with the
// model reliability and B(20, p̂_r) with the honest empirical per-execution
// reliability (they differ by the die-out mass; see DESIGN.md A6).
func successFigure(cfg Config, id string, fanout, q float64) (*Figure, error) {
	f := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("Gossiping success simulation (nodes = 2000), f=%.1f, q=%.1f", fanout, q),
		XLabel: "k (executions in which a member received m, of 20)",
		YLabel: "Pr(X = k)",
	}
	p := core.SuccessParams{
		Params: core.Params{
			N:          2000,
			Fanout:     dist.NewPoisson(fanout),
			AliveRatio: q,
		},
		Executions:  20,
		Simulations: cfg.runs(100, 5),
	}
	out, err := core.RunSuccessCtx(cfg.ctx(), p, cfg.Seed^0x51CCE55, 0, nil)
	if err != nil {
		return nil, err
	}
	sRel, err := genfunc.PoissonReliability(fanout, q)
	if err != nil {
		return nil, err
	}
	empRel := out.MeanExecutionReliability

	sim := Series{Name: "simulation"}
	anaModel := Series{Name: fmt.Sprintf("analysis B(20, %.3f) [paper]", sRel)}
	anaEmp := Series{Name: fmt.Sprintf("analysis B(20, %.3f) [empirical p_r]", empRel)}
	pmfModel := stats.BinomialPMFs(20, sRel)
	pmfEmp := stats.BinomialPMFs(20, empRel)
	for k := 0; k <= 20; k++ {
		x := float64(k)
		sim.X = append(sim.X, x)
		sim.Y = append(sim.Y, out.ReceiptHistogram.Freq(k))
		anaModel.X = append(anaModel.X, x)
		anaModel.Y = append(anaModel.Y, pmfModel[k])
		anaEmp.X = append(anaEmp.X, x)
		anaEmp.Y = append(anaEmp.Y, pmfEmp[k])
	}
	f.Series = append(f.Series, sim, anaModel, anaEmp)

	f.Note("model reliability S = %.4f (paper rounds to 0.967); empirical p_r = %.4f ≈ S² = %.4f",
		sRel, empRel, sRel*sRel)
	obs := make([]int64, 21)
	for k := range obs {
		obs[k] = out.ReceiptHistogram.Count(k)
	}
	if d, err := stats.KolmogorovSmirnov(obs, pmfEmp); err == nil {
		f.Note("KS distance to B(20, empirical p_r) = %.4f", d)
	}
	if d, err := stats.KolmogorovSmirnov(obs, pmfModel); err == nil {
		f.Note("KS distance to B(20, model S) = %.4f", d)
	}
	f.Note("empirical Pr(success of gossiping) over %d simulations = %.3f", out.Simulations, out.SuccessRate)
	if tmin, err := stats.MinTrials(0.999, empRel); err == nil {
		f.Note("Eq. 6 with empirical p_r: t >= %d for p_s = 0.999", tmin)
	}
	return f, nil
}

// Fig6 reproduces the paper's Fig. 6 ({f, q} = {4.0, 0.9}).
func Fig6(cfg Config) (*Figure, error) { return successFigure(cfg, "fig6", 4.0, 0.9) }

// Fig7 reproduces the paper's Fig. 7 ({f, q} = {6.0, 0.6}).
func Fig7(cfg Config) (*Figure, error) { return successFigure(cfg, "fig7", 6.0, 0.6) }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
