// Package experiment defines the reproduction harness: one Experiment per
// figure of the paper (Figs. 2–7) plus the ablation studies listed in
// DESIGN.md (A1–A6). Each experiment produces a Figure — named series of
// (x, y) points with notes — which the harness can emit as CSV or render as
// an ASCII chart. EXPERIMENTS.md records paper-vs-measured for each.
package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"gossipkit/internal/asciiplot"
)

// Config tunes how heavy an experiment run is.
type Config struct {
	// Seed makes the run reproducible.
	Seed uint64
	// Scale multiplies the replication counts (20 runs/point, 100
	// simulations in the paper). 1.0 reproduces the paper's counts; CI
	// and unit tests use smaller values. Values <= 0 mean 1.0.
	Scale float64
	// Ctx, when non-nil, cancels a running experiment mid-sweep: the
	// Monte-Carlo and scenario worker pools underneath check it between
	// replications. Nil means context.Background().
	Ctx context.Context
}

// ctx returns the run's context, defaulting to Background.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// runs scales a paper replication count, with a floor.
func (c Config) runs(paper, floor int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	n := int(float64(paper)*s + 0.5)
	if n < floor {
		n = floor
	}
	return n
}

// Series is one named (x, y) sequence of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is the output of one experiment.
type Figure struct {
	// ID is the harness identifier (fig4a, ablation-critical-point, ...).
	ID string
	// Title describes the figure, mirroring the paper's caption.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds the data; by convention simulation series come first
	// and analytic series carry an "analysis" suffix.
	Series []Series
	// Notes carries derived scalar findings (critical points, RMSEs,
	// chi-square statistics) for EXPERIMENTS.md.
	Notes []string
}

// Note appends a formatted note.
func (f *Figure) Note(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// CSV renders the figure as a wide CSV: x, then one column per series
// (series are aligned by x where values match; otherwise rows are the union
// of x values with blanks).
func (f *Figure) CSV() string {
	// Collect the union of x values in sorted order.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	var b strings.Builder
	b.WriteString("x")
	for _, s := range f.Series {
		b.WriteString(",")
		b.WriteString(strings.ReplaceAll(s.Name, ",", ";"))
	}
	b.WriteString("\n")
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			b.WriteString(",")
			for i := range s.X {
				if s.X[i] == x {
					fmt.Fprintf(&b, "%g", s.Y[i])
					break
				}
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ASCII renders the figure as a terminal chart.
func (f *Figure) ASCII(w, h int) string {
	series := make([]asciiplot.Series, len(f.Series))
	for i, s := range f.Series {
		series[i] = asciiplot.Series{Name: s.Name, X: s.X, Y: s.Y}
	}
	title := fmt.Sprintf("%s — %s  [y: %s, x: %s]", f.ID, f.Title, f.YLabel, f.XLabel)
	out := asciiplot.Chart(title, series, w, h)
	if len(f.Notes) > 0 {
		out += "notes:\n"
		for _, n := range f.Notes {
			out += "  - " + n + "\n"
		}
	}
	return out
}

// Experiment couples an identifier with a runner.
type Experiment struct {
	// ID is the harness identifier used by cmd/experiments -run.
	ID string
	// Paper cites the paper artifact this reproduces ("Fig. 4a"), or
	// "extension" for the ablations.
	Paper string
	// Description says what is measured.
	Description string
	// Run produces the figure.
	Run func(cfg Config) (*Figure, error)
}

// All returns every registered experiment, paper figures first.
func All() []Experiment {
	return []Experiment{
		{ID: "fig2", Paper: "Fig. 2", Description: "Mean fanout z required for reliability S under various q (Eq. 12)", Run: Fig2},
		{ID: "fig3", Paper: "Fig. 3", Description: "Minimum executions t for success probability 0.999 vs reliability S (Eq. 6)", Run: Fig3},
		{ID: "fig4a", Paper: "Fig. 4a", Description: "Reliability vs mean fanout, n=1000, q in {0.1,0.3,0.5,1.0}: simulation vs analysis", Run: Fig4a},
		{ID: "fig4b", Paper: "Fig. 4b", Description: "Reliability vs mean fanout, n=1000, q in {0.4,0.6,0.8,1.0}: simulation vs analysis", Run: Fig4b},
		{ID: "fig5a", Paper: "Fig. 5a", Description: "Reliability vs mean fanout, n=5000, q in {0.1,0.3,0.5,1.0}: simulation vs analysis", Run: Fig5a},
		{ID: "fig5b", Paper: "Fig. 5b", Description: "Reliability vs mean fanout, n=5000, q in {0.4,0.6,0.8,1.0}: simulation vs analysis", Run: Fig5b},
		{ID: "fig6", Paper: "Fig. 6", Description: "Distribution of per-member receipt count X over 20 executions, n=2000, f=4.0, q=0.9 vs Binomial", Run: Fig6},
		{ID: "fig7", Paper: "Fig. 7", Description: "Distribution of per-member receipt count X over 20 executions, n=2000, f=6.0, q=0.6 vs Binomial", Run: Fig7},
		{ID: "ablation-fanout-shape", Paper: "extension (A1)", Description: "Does the undirected model predict directed gossip for non-Poisson fanouts?", Run: AblationFanoutShape},
		{ID: "ablation-critical-point", Paper: "extension (A2)", Description: "Sharpness of the q_c = 1/z phase transition", Run: AblationCriticalPoint},
		{ID: "ablation-failure-mask", Paper: "extension (A3)", Description: "Fixed vs resampled failure masks across the t executions", Run: AblationFailureMask},
		{ID: "ablation-finite-size", Paper: "extension (A4)", Description: "Model error vs group size at fixed f·q", Run: AblationFiniteSize},
		{ID: "ablation-partial-view", Paper: "extension (A5)", Description: "SCAMP partial views vs the full-view assumption", Run: AblationPartialView},
		{ID: "ablation-reach-vs-giant", Paper: "extension (A6)", Description: "Directed source reach vs giant out-component (die-out mass)", Run: AblationReachVsGiant},
		{ID: "ablation-message-loss", Paper: "extension (A7)", Description: "Message loss as bond percolation: network simulation vs thinned Eq. 11", Run: AblationMessageLoss},
		{ID: "ablation-epidemic-curve", Paper: "extension (A8)", Description: "Per-round infection curve vs the pbcast-style round recurrence", Run: AblationEpidemicCurve},
		{ID: "ablation-protocol-comparison", Paper: "extension (A9)", Description: "Reliability vs message cost across protocol families", Run: AblationProtocolComparison},
		{ID: "scenario-grid", Paper: "extension (S1)", Description: "Bundled time-varying fault campaigns vs the static-q model (internal/scenario)", Run: ScenarioGrid},
		{ID: "curves-overlay", Paper: "extension (S2)", Description: "Probed π(t) curves under crash-wave and burst-loss vs the static-q round recurrence (Eq. 11 inputs)", Run: CurvesOverlay},
		{ID: "stream-round-interval", Paper: "extension (S3)", Description: "Streaming reliability degradation as the round interval shrinks below the latency bound, at three offered loads (internal/stream)", Run: StreamRoundInterval},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiment: unknown id %q", id)
}
