package experiment

import (
	"fmt"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
	"gossipkit/internal/genfunc"
	"gossipkit/internal/numeric"
	"gossipkit/internal/protocols"
	"gossipkit/internal/simnet"
	"gossipkit/internal/stats"
	"gossipkit/internal/xrand"
)

// AblationMessageLoss (A7) extends the paper's site-percolation model with
// bond percolation: messages are lost independently with probability p.
// The analytic prediction thins the mean fanout to z(1−p); the simulation
// runs the protocol over the discrete-event network with Bernoulli loss
// and measures delivered fraction among alive members, conditioned through
// the giant-component estimate of repeated runs.
func AblationMessageLoss(cfg Config) (*Figure, error) {
	f := &Figure{
		ID:     "ablation-message-loss",
		Title:  "Message loss as bond percolation (n=1000, f=5.0, q=0.9)",
		XLabel: "message loss probability",
		YLabel: "reliability",
	}
	const n, z, q = 1000, 5.0, 0.9
	runs := cfg.runs(30, 4)
	sim := Series{Name: "network simulation (mean delivery)"}
	anaJoint := Series{Name: "analysis S(z(1−loss), q) (Eq. 11 + thinning)"}
	anaOneShot := Series{Name: "analysis one-shot ≈ S²"}
	p := core.Params{N: n, Fanout: dist.NewPoisson(z), AliveRatio: q}
	for li, loss := range numeric.Linspace(0, 0.7, 8) {
		var acc stats.Running
		for rI := 0; rI < runs; rI++ {
			r := xrand.New(cfg.Seed ^ uint64(li*1000+rI+1))
			res, err := core.ExecuteOnNetwork(p, simnet.Config{
				Loss: simnet.BernoulliLoss{P: loss},
			}, r)
			if err != nil {
				return nil, err
			}
			acc.Add(res.Reliability)
		}
		s, err := genfunc.JointReliability(dist.NewPoisson(z), q, loss)
		if err != nil {
			return nil, err
		}
		sim.X = append(sim.X, loss)
		sim.Y = append(sim.Y, acc.Mean())
		anaJoint.X = append(anaJoint.X, loss)
		anaJoint.Y = append(anaJoint.Y, s)
		anaOneShot.X = append(anaOneShot.X, loss)
		anaOneShot.Y = append(anaOneShot.Y, s*s)
	}
	f.Series = append(f.Series, sim, anaJoint, anaOneShot)
	lc, err := genfunc.JointCriticalLoss(dist.NewPoisson(z), q)
	if err != nil {
		return nil, err
	}
	f.Note("critical loss = 1 − 1/(zq) = %.4f: reliability collapses beyond it", lc)
	if rm, err := stats.RMSE(sim.Y, anaOneShot.Y); err == nil {
		f.Note("RMSE(mean one-shot delivery, S²-thinned) = %.4f", rm)
	}
	return f, nil
}

// AblationEpidemicCurve (A8) compares the simulated per-round infection
// curve with the pbcast-style round recurrence (the modeling approach of
// the paper's related work §2).
func AblationEpidemicCurve(cfg Config) (*Figure, error) {
	f := &Figure{
		ID:     "ablation-epidemic-curve",
		Title:  "Per-round infection curve vs round recurrence (n=2000, f=5.0, q=0.9)",
		XLabel: "round",
		YLabel: "cumulative infected (alive members)",
	}
	const n, z, q = 2000, 5.0, 0.9
	p := core.Params{N: n, Fanout: dist.NewPoisson(z), AliveRatio: q}
	runs := cfg.runs(200, 20)
	simCurve, err := core.MeanTraceRounds(p, runs, cfg.Seed^0xA8)
	if err != nil {
		return nil, err
	}
	model, err := core.RecurrenceModel(n, z, q, len(simCurve)-1)
	if err != nil {
		return nil, err
	}
	sim := Series{Name: "simulation (mean over runs)"}
	rec := Series{Name: "recurrence model [pbcast-style]"}
	for r := range simCurve {
		sim.X = append(sim.X, float64(r))
		sim.Y = append(sim.Y, simCurve[r])
		rec.X = append(rec.X, float64(r))
		rec.Y = append(rec.Y, model[r])
	}
	f.Series = append(f.Series, sim, rec)
	r99, err := core.RoundsToCoverage(n, z, q, 0.99, 60)
	if err != nil {
		return nil, err
	}
	f.Note("rounds to 99%% of plateau (model): %d", r99)
	f.Note("simulation mean includes ~%.1f%% die-out runs, scaling its plateau by the outbreak probability",
		100*(1-mustOutbreak(z, q)))
	return f, nil
}

func mustOutbreak(z, q float64) float64 {
	ob, err := genfunc.OutbreakProbability(dist.NewPoisson(z), q)
	if err != nil {
		return 0
	}
	return ob
}

// AblationProtocolComparison (A9) puts the paper's single-shot general
// gossip next to the protocol families of its related work at one
// operating point (n=1000, q=0.8): reliability achieved vs messages spent.
func AblationProtocolComparison(cfg Config) (*Figure, error) {
	f := &Figure{
		ID:     "ablation-protocol-comparison",
		Title:  "Reliability vs message cost across protocol families (n=1000, q=0.8)",
		XLabel: "mean messages per multicast",
		YLabel: "reliability among nonfailed members",
	}
	const n = 1000
	const q = 0.8
	runs := cfg.runs(20, 4)
	type point struct {
		name     string
		rel, msg float64
	}
	var pts []point

	// Single-shot general gossip (the paper), Po(5).
	{
		var rel, msg stats.Running
		p := core.Params{N: n, Fanout: dist.NewPoisson(5), AliveRatio: q}
		for i := 0; i < runs; i++ {
			r := xrand.New(cfg.Seed ^ uint64(i+1))
			res, err := core.ExecuteOnce(p, r)
			if err != nil {
				return nil, err
			}
			rel.Add(res.Reliability)
			msg.Add(float64(res.MessagesSent))
		}
		pts = append(pts, point{"single-shot gossip Po(5)", rel.Mean(), msg.Mean()})
	}
	// Paper's Eq. 6 remedy: three executions, member satisfied by any.
	{
		var rel, msg stats.Running
		p := core.SuccessParams{
			Params:      core.Params{N: n, Fanout: dist.NewPoisson(5), AliveRatio: q},
			Executions:  3,
			Simulations: runs,
		}
		out, err := core.RunSuccessCtx(cfg.ctx(), p, cfg.Seed^0x333, 0, nil)
		if err != nil {
			return nil, err
		}
		atLeastOnce := 1 - out.ReceiptHistogram.Freq(0)
		rel.Add(atLeastOnce)
		msg.Add(3 * 5 * float64(n) * q) // three executions' expected sends
		pts = append(pts, point{"3x repeated gossip (Eq. 6)", rel.Mean(), msg.Mean()})
	}
	// Pbcast-style rounds.
	{
		var rel, msg stats.Running
		for i := 0; i < runs; i++ {
			r := xrand.New(cfg.Seed ^ uint64(0x500+i))
			res, err := protocols.RunPbcast(protocols.PbcastParams{
				N: n, Fanout: 3, Rounds: 12, AliveRatio: q,
			}, r)
			if err != nil {
				return nil, err
			}
			rel.Add(res.Reliability)
			msg.Add(float64(res.MessagesSent))
		}
		pts = append(pts, point{"pbcast rounds f=3", rel.Mean(), msg.Mean()})
	}
	// Anti-entropy push-pull until quiescent.
	{
		var rel, msg stats.Running
		for i := 0; i < runs; i++ {
			r := xrand.New(cfg.Seed ^ uint64(0x700+i))
			res, err := protocols.RunAntiEntropy(protocols.AntiEntropyParams{
				N: n, Rounds: 0, Mode: protocols.PushPull, AliveRatio: q,
			}, r)
			if err != nil {
				return nil, err
			}
			rel.Add(res.Reliability)
			msg.Add(float64(res.MessagesSent))
		}
		pts = append(pts, point{"anti-entropy push-pull", rel.Mean(), msg.Mean()})
	}
	// LRG.
	{
		var rel, msg stats.Running
		for i := 0; i < runs; i++ {
			r := xrand.New(cfg.Seed ^ uint64(0x900+i))
			res, err := protocols.RunLRG(protocols.LRGParams{
				N: n, Degree: 8, GossipProb: 0.7, RepairRounds: 4, AliveRatio: q,
			}, r)
			if err != nil {
				return nil, err
			}
			rel.Add(res.Reliability)
			msg.Add(float64(res.MessagesSent))
		}
		pts = append(pts, point{"LRG deg=8 pg=0.7", rel.Mean(), msg.Mean()})
	}
	// Flooding.
	{
		var rel, msg stats.Running
		for i := 0; i < runs; i++ {
			r := xrand.New(cfg.Seed ^ uint64(0xB00+i))
			res, err := protocols.RunFlooding(protocols.FloodingParams{N: n, AliveRatio: q}, r)
			if err != nil {
				return nil, err
			}
			rel.Add(res.Reliability)
			msg.Add(float64(res.MessagesSent))
		}
		pts = append(pts, point{"flooding", rel.Mean(), msg.Mean()})
	}

	for _, pt := range pts {
		f.Series = append(f.Series, Series{
			Name: pt.name,
			X:    []float64{pt.msg},
			Y:    []float64{pt.rel},
		})
		f.Note("%-28s reliability %.4f at %.0f msgs", pt.name, pt.rel, pt.msg)
	}
	f.Note("flooding buys its last fraction of a percent at ~%sx the gossip cost",
		fmt.Sprintf("%.0f", pts[len(pts)-1].msg/pts[0].msg))
	return f, nil
}
