package experiment

import (
	"math"
	"strings"
	"testing"
)

// testCfg keeps unit-test runtime modest while exercising every code path.
var testCfg = Config{Seed: 7, Scale: 0.15}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) < 14 {
		t.Fatalf("registry has %d experiments", len(all))
	}
	want := []string{"fig2", "fig3", "fig4a", "fig4b", "fig5a", "fig5b", "fig6", "fig7"}
	for _, id := range want {
		e, err := ByID(id)
		if err != nil {
			t.Fatalf("missing %s: %v", id, err)
		}
		if e.Run == nil || e.Description == "" || e.Paper == "" {
			t.Errorf("%s incompletely registered", id)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestConfigRuns(t *testing.T) {
	if got := (Config{Scale: 1}).runs(20, 3); got != 20 {
		t.Errorf("full scale runs = %d", got)
	}
	if got := (Config{Scale: 0.1}).runs(20, 3); got != 3 {
		t.Errorf("scaled-down runs = %d, want floor 3", got)
	}
	if got := (Config{}).runs(20, 3); got != 20 {
		t.Errorf("zero scale (=1.0) runs = %d", got)
	}
}

func TestFig2Shape(t *testing.T) {
	f, err := Fig2(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 5 {
		t.Fatalf("series = %d, want 5 (one per q)", len(f.Series))
	}
	// Each curve is increasing in S and curves are ordered by 1/q.
	for _, s := range f.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1]-1e-9 {
				t.Fatalf("%s not increasing at %d", s.Name, i)
			}
		}
	}
	q02, q10 := f.Series[0], f.Series[4]
	for i := range q02.Y {
		if q02.Y[i] < q10.Y[i] {
			t.Fatalf("q=0.2 curve below q=1.0 at %d", i)
		}
	}
	// Top of the q=0.2 curve sits below the paper's 50-mark.
	if top := q02.Y[len(q02.Y)-1]; top < 40 || top > 50 {
		t.Errorf("z(S→1, q=0.2) = %.2f, paper plot tops near 46", top)
	}
}

func TestFig3Shape(t *testing.T) {
	f, err := Fig3(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	// t decreases in S, from ~24 at S=0.25 down to 1.
	if s.Y[0] < 15 || s.Y[0] > 30 {
		t.Errorf("t(S=0.25) = %g, paper plot starts near 20", s.Y[0])
	}
	if s.Y[len(s.Y)-1] != 1 {
		t.Errorf("t(S→1) = %g, want 1", s.Y[len(s.Y)-1])
	}
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] > s.Y[i-1] {
			t.Fatalf("t not non-increasing at %d", i)
		}
	}
}

func TestFig4aReproducesPaperShape(t *testing.T) {
	f, err := Fig4a(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 8 {
		t.Fatalf("series = %d, want 8 (4 q × sim+analysis)", len(f.Series))
	}
	for i := 0; i < len(f.Series); i += 2 {
		sim, ana := f.Series[i], f.Series[i+1]
		if len(sim.X) != 15 || len(ana.X) != 15 {
			t.Fatalf("sweep length %d/%d, want 15", len(sim.X), len(ana.X))
		}
		// Simulation tracks analysis. q=0.1 has only 100 alive members,
		// so its subcritical largest component carries a visible
		// finite-size floor (~0.15); give it the wider band.
		tol := 0.12
		if strings.HasPrefix(sim.Name, "q=0.1") {
			tol = 0.22
		}
		for j := range sim.Y {
			if math.Abs(sim.Y[j]-ana.Y[j]) > tol {
				t.Errorf("%s: gap %.3f at f=%.1f", sim.Name, math.Abs(sim.Y[j]-ana.Y[j]), sim.X[j])
			}
		}
	}
	// q=0.1 stays low everywhere (subcritical for f <= 6.7 up to the
	// finite-size floor of 100 alive members).
	q01 := f.Series[0]
	for j, y := range q01.Y {
		if y > 0.25 {
			t.Errorf("q=0.1 reliability %.3f at f=%.1f, should be near 0", y, q01.X[j])
		}
	}
	// q=1.0 reaches high reliability at the top of the sweep.
	q10 := f.Series[6]
	if q10.Y[len(q10.Y)-1] < 0.95 {
		t.Errorf("q=1.0 top-of-sweep reliability %.3f", q10.Y[len(q10.Y)-1])
	}
}

func TestFig6ReproducesPaperShape(t *testing.T) {
	f, err := Fig6(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(f.Series))
	}
	sim := f.Series[0]
	if len(sim.X) != 21 {
		t.Fatalf("histogram bins = %d, want 21", len(sim.X))
	}
	var mass float64
	mode := 0
	for k, y := range sim.Y {
		mass += y
		if y > sim.Y[mode] {
			mode = k
		}
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Errorf("simulated PMF mass = %g", mass)
	}
	if mode < 18 {
		t.Errorf("mode at %d, paper figure spikes near 20", mode)
	}
	if len(f.Notes) < 3 {
		t.Errorf("expected analysis notes, got %v", f.Notes)
	}
}

func TestAblationsRun(t *testing.T) {
	// Every ablation must run clean at test scale and carry notes.
	for _, id := range []string{
		"ablation-fanout-shape",
		"ablation-critical-point",
		"ablation-failure-mask",
		"ablation-finite-size",
		"ablation-partial-view",
		"ablation-reach-vs-giant",
		"ablation-message-loss",
		"ablation-epidemic-curve",
		"ablation-protocol-comparison",
	} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			f, err := e.Run(testCfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(f.Series) == 0 {
				t.Error("no series")
			}
			if len(f.Notes) == 0 {
				t.Error("no notes")
			}
			if f.ID != id {
				t.Errorf("figure ID %q != experiment ID %q", f.ID, id)
			}
		})
	}
}

func TestCurvesOverlay(t *testing.T) {
	f, err := CurvesOverlay(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Fatalf("series = %d, want measured+recurrence for each of 2 campaigns", len(f.Series))
	}
	if len(f.Notes) != 2 {
		t.Fatalf("notes = %d, want one divergence note per campaign: %v", len(f.Notes), f.Notes)
	}
	for _, s := range f.Series {
		if len(s.X) == 0 {
			t.Fatalf("series %q empty", s.Name)
		}
		// π(t)/n curves are fractions and nondecreasing (cumulative
		// infections on both the measured and analytic side).
		for i, y := range s.Y {
			if y < 0 || y > 1.001 {
				t.Errorf("%s: point %d = %g outside [0,1]", s.Name, i, y)
			}
			if i > 0 && y < s.Y[i-1]-1e-9 {
				t.Errorf("%s: curve decreases at point %d (%g -> %g)", s.Name, i, s.Y[i-1], y)
			}
		}
	}
	// The crash waves remove 30% of the group while the static-q
	// recurrence assumes everyone stays up: the measured plateau must sit
	// visibly below the prediction — the divergence this overlay exists
	// to expose.
	measured, predicted := f.Series[0], f.Series[1]
	if !strings.Contains(measured.Name, "crash-wave") {
		t.Fatalf("series order changed: %q", measured.Name)
	}
	mFinal := measured.Y[len(measured.Y)-1]
	pFinal := predicted.Y[len(predicted.Y)-1]
	if mFinal > pFinal-0.05 {
		t.Errorf("crash-wave measured plateau %.4f not below static-q prediction %.4f", mFinal, pFinal)
	}
	if !strings.Contains(f.Notes[0], "diverge") {
		t.Errorf("crash-wave note carries no divergence finding: %q", f.Notes[0])
	}
}

func TestStreamRoundInterval(t *testing.T) {
	f, err := StreamRoundInterval(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 3 {
		t.Fatalf("series = %d, want one per offered load", len(f.Series))
	}
	if len(f.Notes) == 0 {
		t.Error("no notes")
	}
	for _, s := range f.Series {
		if len(s.X) != 7 {
			t.Fatalf("%s: %d ratios, want 7", s.Name, len(s.X))
		}
		// The x-axis is interval/bound; find reliability at the shortest
		// interval and at the latency bound itself.
		var atShort, atBound float64
		for i, x := range s.X {
			switch x {
			case s.X[0]:
				atShort = s.Y[i]
			case 1.0:
				atBound = s.Y[i]
			}
		}
		// Shrinking the round interval below the latency bound truncates
		// the active window before the spread completes: reliability at
		// the shortest interval must sit visibly below the at-bound value.
		if atShort > atBound-0.05 {
			t.Errorf("%s: reliability %.4f at ratio %.1f not below %.4f at the bound",
				s.Name, atShort, s.X[0], atBound)
		}
		for _, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("%s: reliability %g outside [0,1]", s.Name, y)
			}
		}
	}
}

func TestAblationReachVsGiantOrdering(t *testing.T) {
	f, err := AblationReachVsGiant(Config{Seed: 3, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	giant, reach := f.Series[0], f.Series[1]
	// At every fanout the directed reach sits at or below the giant
	// fraction.
	for i := range giant.Y {
		if reach.Y[i] > giant.Y[i]+0.03 {
			t.Errorf("f=%.1f: reach %.3f above giant %.3f", giant.X[i], reach.Y[i], giant.Y[i])
		}
	}
}

func TestCSVOutput(t *testing.T) {
	f := &Figure{
		ID: "t", Title: "T", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b,with comma", X: []float64{2, 3}, Y: []float64{5, 6}},
		},
	}
	csv := f.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d: %q", len(lines), csv)
	}
	if lines[0] != "x,a,b;with comma" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,10," {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "2,20,5" {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestASCIIOutput(t *testing.T) {
	f := &Figure{
		ID: "t", Title: "T", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}}},
	}
	f.Note("hello %d", 42)
	out := f.ASCII(40, 10)
	if !strings.Contains(out, "hello 42") || !strings.Contains(out, "a") {
		t.Errorf("ascii output missing pieces:\n%s", out)
	}
}
