package experiment

import (
	"time"

	"gossipkit/internal/dist"
	"gossipkit/internal/simnet"
	"gossipkit/internal/stats"
	"gossipkit/internal/stream"
	"gossipkit/internal/xrand"
)

// StreamRoundInterval (S3, ROADMAP carry-over) measures how streaming
// reliability degrades as the gossip round interval shrinks below the
// network's latency bound. Round-driven disciplines assume a round's
// messages land before the next tick; when the interval undercuts the
// latency bound the active window (ActiveRounds × interval) closes
// before the spread completes and messages expire half-propagated. The
// sweep runs at three offered loads — below, near, and above the
// saturation knee for the bundled buffer size — so the interaction with
// eviction pressure is visible: under load a too-short interval both
// truncates the window and wastes sends on entries already evicted.
func StreamRoundInterval(cfg Config) (*Figure, error) {
	const (
		n       = 128
		fanout  = 3
		bufCap  = 16
		latLo   = time.Millisecond
		latHi   = 5 * time.Millisecond // the latency bound the x-axis is scaled by
		window  = 300 * time.Millisecond
		actives = 8
	)
	f := &Figure{
		ID:     "stream-round-interval",
		Title:  "Streaming reliability vs round interval / latency bound (n=128, push, cap=16)",
		XLabel: "round interval / latency bound",
		YLabel: "mean per-message reliability",
	}
	rates := []struct {
		rate float64
		name string
	}{
		{200, "rate 200 msg/s (below knee)"},
		{800, "rate 800 msg/s (near knee)"},
		{2400, "rate 2400 msg/s (above knee)"},
	}
	ratios := []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.5, 2.0}
	runs := cfg.runs(10, 3)
	for ri, load := range rates {
		rate := load.rate
		s := Series{Name: load.name}
		for ii, ratio := range ratios {
			interval := time.Duration(ratio * float64(latHi))
			var acc stats.Running
			var evicted, expired int64
			for rI := 0; rI < runs; rI++ {
				if err := cfg.ctx().Err(); err != nil {
					return nil, err
				}
				r := xrand.New(cfg.Seed ^ uint64(ri*100000+ii*1000+rI+1))
				res, err := stream.Run(stream.Config{
					N: n, Rate: rate, Duration: window,
					Fanout: dist.NewFixed(fanout), BufferCap: bufCap,
					Discipline: stream.DisciplinePush, Eviction: stream.EvictAge,
					ActiveRounds: actives, RoundInterval: interval,
				}, simnet.Config{
					Latency: simnet.UniformLatency{Lo: latLo, Hi: latHi},
				}, r)
				if err != nil {
					return nil, err
				}
				acc.Add(res.MeanReliability)
				evicted += res.Ledger.Evicted
				expired += res.Ledger.Expired
			}
			s.X = append(s.X, ratio)
			s.Y = append(s.Y, acc.Mean())
			if ratio == ratios[0] || ratio == 1.0 {
				f.Note("rate %.0f msg/s at ratio %.1f: reliability %.4f (evicted %d, expired %d per %d runs)",
					rate, ratio, acc.Mean(), evicted, expired, runs)
			}
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}
