package experiment

import (
	"fmt"
	"math"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/dist"
	"gossipkit/internal/obs"
	"gossipkit/internal/scenario"
)

// CurvesOverlay (S2) overlays the probed infection curves π(t) of the
// crash-wave and burst-loss campaigns on the static-q round recurrence
// built from the same Eq. 11 inputs (n, z, initial q). The recurrence has
// no notion of time-varying faults, so the overlay makes the model's
// blind spot visible as a curve-level divergence — not just the endpoint
// reliability gap that scenario-grid (S1) reports. Rounds map to virtual
// time through the mean per-hop transit latency of the scenario runner's
// default latency model (uniform 1–20 ms → 10.5 ms per hop).
func CurvesOverlay(cfg Config) (*Figure, error) {
	const (
		n       = 1000
		z       = 5.0
		meanHop = 10.5 * float64(time.Millisecond)
	)
	f := &Figure{
		ID:     "curves-overlay",
		Title:  "Measured π(t) under fault campaigns vs the static-q round recurrence (n=1000, f=5.0)",
		XLabel: "virtual time (ms)",
		YLabel: "infected fraction π(t)/n",
	}
	seeds := cfg.runs(20, 3)
	for _, name := range []string{"crash-wave", "burst-loss"} {
		s, ok := scenario.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiment: scenario %q missing from the bundled suite", name)
		}
		sweepCfg := scenario.SweepConfig{
			Run: scenario.RunConfig{
				Params:            core.Params{N: n, Fanout: dist.NewPoisson(z), AliveRatio: 1},
				PartialViewCopies: 2,
			},
			Seeds:    seeds,
			BaseSeed: cfg.Seed,
			Probe:    &obs.Options{CurveTick: 5 * time.Millisecond},
		}
		res, err := scenario.SweepCtx(cfg.ctx(), []*scenario.Scenario{s}, sweepCfg, nil)
		if err != nil {
			return nil, err
		}
		g := res.Curves[0]
		means := g.InfectedMeans()
		if len(means) == 0 {
			return nil, fmt.Errorf("experiment: %s produced no curve samples", name)
		}
		tickMs := float64(g.Tick) / float64(time.Millisecond)

		// The recurrence curve, evaluated at each sample tick by linear
		// interpolation between rounds r = t / meanHop.
		horizon := int(float64(len(means)-1)*float64(g.Tick)/meanHop) + 2
		cum, err := core.RecurrenceModel(n, z, 1.0, horizon)
		if err != nil {
			return nil, err
		}
		measured := Series{Name: name + " measured"}
		predicted := Series{Name: name + " recurrence (static q)"}
		firstDiv := -1
		for i, m := range means {
			x := float64(i) * tickMs
			r := float64(i) * float64(g.Tick) / meanHop
			lo := int(r)
			if lo >= len(cum)-1 {
				lo = len(cum) - 2
			}
			pred := cum[lo] + (r-float64(lo))*(cum[lo+1]-cum[lo])
			measured.X = append(measured.X, x)
			measured.Y = append(measured.Y, m/n)
			predicted.X = append(predicted.X, x)
			predicted.Y = append(predicted.Y, pred/n)
			if firstDiv < 0 && math.Abs(m-pred)/n > 0.05 {
				firstDiv = i
			}
		}
		last := len(means) - 1
		if firstDiv >= 0 {
			f.Note("%s: measured and static-q recurrence first diverge by >5%% of n at t=%.0fms; final π/n %.4f vs predicted %.4f",
				name, float64(firstDiv)*tickMs, measured.Y[last], predicted.Y[last])
		} else {
			f.Note("%s: measured π(t) tracks the static-q recurrence within 5%% of n throughout; final π/n %.4f vs predicted %.4f",
				name, measured.Y[last], predicted.Y[last])
		}
		f.Series = append(f.Series, measured, predicted)
	}
	return f, nil
}
