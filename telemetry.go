package gossipkit

import (
	"io"

	"gossipkit/internal/obs"
	"gossipkit/internal/simnet"
)

// Dissemination telemetry: WithProbe attaches an internal/obs probe to
// every replication of a discrete-event engine (Network, the protocol
// baselines, and Campaign), sampling virtual-time curves — the infected
// count π(t), the in-flight gauge, per-kind send/deliver/drop counters —
// plus delivery-latency, rounds-to-delivery, and fanout histograms, and
// optionally a bounded event trace.
//
// The contract is zero overhead when off: without WithProbe the hot paths
// run exactly as before (nil-probe hooks compile to a nil check), and the
// probed results are bit-identical to unprobed ones — the probe neither
// consumes RNG streams nor schedules kernel events. Engines that never
// touch the DES substrate (Analytic, MonteCarlo, Success) have nothing to
// observe and silently ignore the option; Compare and Campaign grid mode
// reject it (one merged curve per scenario has no meaning across
// protocol rows or grid axes — run the cells you care about separately).

// ProbeOptions configures dissemination telemetry; the zero value enables
// curves and histograms at default resolution (1ms tick, 64×1ms latency
// bins) with tracing off. See the internal/obs field docs for tuning and
// for disabling individual instruments.
type ProbeOptions = obs.Options

// RunMetrics is one replication's telemetry snapshot (Report.Metrics):
// virtual-time series, histogram snapshots, network totals, and the
// optional event trace.
type RunMetrics = obs.Metrics

// MergedMetrics aggregates RunMetrics across replications
// (Outcome.Metrics): per-tick moments of every series — merged in run
// order, so byte-identical for any WithWorkers count — and summed
// histograms. Render with its WriteCurveCSV.
type MergedMetrics = obs.Merged

// NetTraceEvent is one recorded network event in RunMetrics.Trace.
type NetTraceEvent = simnet.Event

// WithProbe enables dissemination telemetry on a discrete-event engine:
// each replication's Report carries its RunMetrics, and the Outcome
// carries the MergedMetrics across replications. Sweeping engines pool
// one probe per worker, so the per-run cost is re-Attach bookkeeping,
// not allocation.
func WithProbe(opts ProbeOptions) Option {
	return func(o *runOptions) { o.probe = &opts }
}

// WriteChromeTrace renders recorded events (RunMetrics.Trace) as Chrome
// trace-event JSON — load the file at chrome://tracing or in Perfetto.
// Deliveries become complete events spanning send→receipt on the
// receiver's track; drops and sends become instants.
func WriteChromeTrace(w io.Writer, events []NetTraceEvent) error {
	return obs.WriteChromeTrace(w, events)
}

// WriteTraceCSV renders recorded events (RunMetrics.Trace) as CSV, one
// row per event.
func WriteTraceCSV(w io.Writer, events []NetTraceEvent) error {
	return obs.WriteTraceCSV(w, events)
}

// StartPprof serves net/http/pprof on addr (e.g. "localhost:6060") in the
// background, returning the bound address — pass ":0" for an ephemeral
// port. The cmd binaries wire this behind their -pprof flag.
func StartPprof(addr string) (string, error) { return obs.StartPprof(addr) }
