package gossipkit

import (
	"context"
	"fmt"
	"io"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/obs"
	"gossipkit/internal/runpool"
	"gossipkit/internal/scenario"
	"gossipkit/internal/stream"
	"gossipkit/internal/topology"
	"gossipkit/internal/xrand"
)

// StreamConfig parameterizes a streaming workload: an open-loop Poisson
// publish stream at an aggregate offered rate, many sources, per-member
// bounded rumor buffers with a pluggable eviction policy, and a
// propagation discipline generalizing the repo's protocol families to
// sustained load. See the internal/stream field docs.
type StreamConfig = stream.Config

// StreamResult is one streaming run's outcome: the per-message
// reliability distribution, outcome tallies, delivery-latency summary,
// and the conservation ledger (see StreamLedger).
type StreamResult = stream.Result

// StreamMessage is one message's per-run accounting inside
// StreamResult.Messages.
type StreamMessage = stream.MessageResult

// StreamLedger is a streaming run's conservation accounting; at
// quiescence Inserted = Evicted + Expired + Resident exactly, and
// Sends/Receipts tie to the network fabric's counters.
type StreamLedger = stream.Ledger

// StreamOutcome classifies one message's fate (delivered, lost to
// eviction, lost to drops, died, or skipped).
type StreamOutcome = stream.MessageOutcome

// Message outcomes (StreamMessage.Outcome).
const (
	// MsgDelivered: every initially-alive member received the message.
	MsgDelivered = stream.MsgDelivered
	// MsgLostEviction: incomplete with at least one buffered copy
	// evicted under capacity pressure.
	MsgLostEviction = stream.MsgLostEviction
	// MsgLostDrop: incomplete with sends lost in the network, none
	// evicted.
	MsgLostDrop = stream.MsgLostDrop
	// MsgDied: propagation stopped on its own before covering the group.
	MsgDied = stream.MsgDied
	// MsgSkipped: the source was down at publish time; the message never
	// entered the stream.
	MsgSkipped = stream.MsgSkipped
)

// EvictionPolicy selects the buffer-eviction victim under capacity
// pressure.
type EvictionPolicy = stream.EvictionPolicy

// Buffer eviction policies.
const (
	// EvictFIFO drops the longest-buffered entry.
	EvictFIFO = stream.EvictFIFO
	// EvictRandom drops a uniformly random entry.
	EvictRandom = stream.EvictRandom
	// EvictAge drops the entry published earliest.
	EvictAge = stream.EvictAge
	// EvictLpbcast drops the entry seen most often as a duplicate
	// (lpbcast's frequency-based purging).
	EvictLpbcast = stream.EvictLpbcast
)

// StreamDiscipline selects how buffered messages propagate under load.
type StreamDiscipline = stream.Discipline

// Streaming propagation disciplines, each the load-phase generalization
// of a protocol family: all of them gossip (digests of) their active
// buffer instead of one rumor.
const (
	// StreamEager forwards each message fanout-wise at first receipt —
	// the paper's general gossiping algorithm per message.
	StreamEager = stream.DisciplineEager
	// StreamPush gossips the whole active buffer every round tick — the
	// pbcast/lpbcast family.
	StreamPush = stream.DisciplinePush
	// StreamPushPull gossips buffer digests every round with NACK/repair
	// recovery — the anti-entropy/RDG family.
	StreamPushPull = stream.DisciplinePushPull
	// StreamFlood forwards each message to the full view at first
	// receipt — the flooding/LRG family.
	StreamFlood = stream.DisciplineFlood
)

// ParseEviction resolves an eviction-policy name ("fifo", "random",
// "age", "lpbcast") from untrusted input (CLI flags, config files);
// errors wrap ErrInvalidParams.
func ParseEviction(s string) (EvictionPolicy, error) {
	p, err := stream.ParseEviction(s)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalidParams, err)
	}
	return p, nil
}

// ParseDiscipline resolves a streaming-discipline name ("eager",
// "push", "pushpull", "flood") from untrusted input; errors wrap
// ErrInvalidParams.
func ParseDiscipline(s string) (StreamDiscipline, error) {
	d, err := stream.ParseDiscipline(s)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalidParams, err)
	}
	return d, nil
}

// StreamRunMetrics is one streaming replication's telemetry snapshot
// (Report.Stream, under WithProbe): cumulative virtual-time curves of
// occupancy, active messages, publishes, deliveries, evictions, expiries,
// and fabric sends/drops, plus the delivery-latency histogram.
type StreamRunMetrics = obs.StreamMetrics

// MergedStreamMetrics aggregates StreamRunMetrics across replications
// (Outcome.Stream): per-tick moments of every series, merged in run
// order, so byte-identical for any WithWorkers count. Render with its
// WriteCurveCSV.
type MergedStreamMetrics = obs.StreamMerged

// StreamCurveCSVHeader is the column header MergedStreamMetrics
// WriteCurveCSV emits.
const StreamCurveCSVHeader = obs.StreamCurveCSVHeader

// WriteStreamCurveCSV renders merged streaming curves as CSV rows
// labeled with label; emit the header once (header=true on the first
// call, or write StreamCurveCSVHeader yourself).
func WriteStreamCurveCSV(w io.Writer, m *MergedStreamMetrics, label string, header bool) error {
	return m.WriteCurveCSV(w, label, header)
}

// StreamExecutor wraps a streaming workload as a ScenarioExecutor: set
// it on ScenarioRunConfig.Executor to drive any fault campaign — crash
// waves, burst loss, partitions, flash crowds — against a sustained
// multi-message stream instead of one rumor. The campaign report
// summarizes the stream (mean per-message reliability); run the Stream
// engine for full per-message detail.
func StreamExecutor(cfg StreamConfig) ScenarioExecutor {
	return scenario.NewStreamExecutor(cfg)
}

// Stream is the engine for steady-state streaming workloads: each
// replication drives a sustained multi-message publish stream through
// the discrete-event network and reports the per-message reliability
// distribution against the offered load, with eviction-loss attribution
// that reconciles exactly (published = delivered + lost + died, and the
// buffer-copy ledger balances at quiescence).
//
// Report mapping: Reliability is the mean per-message reliability,
// Delivered the total first receipts across messages, MessagesSent the
// total protocol sends of every kind, Rounds the round-tick count, and
// SpreadMs the final virtual time. Detail is the full StreamResult.
// WithProbe attaches streaming telemetry (Report.Stream,
// Outcome.Stream); WithShards runs each replication on the
// conservative-PDES sharded kernel; WithTopology restricts gossip to a
// generated overlay. Replications recycle one arena per worker, so rate
// sweeps make no O(n)- or O(buffer)-sized allocations after warm-up.
// WithoutReports additionally runs every replication in summary mode
// (StreamConfig.SummaryOnly): per-message accounting folds into the
// run-level aggregates and the O(messages) Messages slice is never
// allocated — the memory posture for 10⁶–10⁷-rumor runs. Set
// Config.Batch for batched wire digests (one event per round per peer
// instead of one per buffered entry).
type Stream struct {
	// Config is the streaming workload under execution.
	Config StreamConfig
	// Net configures the simulated network substrate; the zero value is
	// an ideal network.
	Net NetConfig
}

// Name implements Engine.
func (Stream) Name() string { return "stream" }

func (s Stream) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	if err := s.Config.Validate(); err != nil {
		return nil, invalid(err)
	}
	if err := o.topology.Validate(s.Config.N); err != nil {
		return nil, invalid(err)
	}
	if !o.topology.IsUniform() && s.Config.View != nil {
		return nil, fmt.Errorf("%w: WithTopology conflicts with a caller-set Config.View", ErrInvalidParams)
	}

	execute := func(r *xrand.RNG, arena *stream.Arena, probe *obs.StreamProbe) (stream.Result, error) {
		cfg := s.Config
		if o.noReports {
			// WithoutReports discards per-run Reports, so per-message rows
			// would never reach the caller: run in summary mode and skip
			// the O(messages) Result.Messages allocation entirely.
			cfg.SummaryOnly = true
		}
		if ov, err := o.topology.Build(cfg.N, r.Split(topology.Split)); err != nil {
			return stream.Result{}, err
		} else if ov != nil {
			cfg.View = ov
		}
		if o.shards > 1 {
			return stream.RunSharded(cfg, s.Net, r, nil, arena, probe,
				core.ShardOptions{Shards: o.shards, Progress: shardProgress(o)})
		}
		return stream.RunProbed(cfg, s.Net, r, nil, arena, probe)
	}

	if o.rng != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var probe *obs.StreamProbe
		if o.probe != nil {
			probe = obs.NewStream(*o.probe)
		}
		res, err := execute(o.rng, nil, probe)
		if err != nil {
			return nil, err
		}
		emit(streamReport(res, probe.Metrics()))
		return nil, nil
	}

	root := xrand.New(o.seed)
	workers := runpool.Count(o.workers, o.runs)
	arenas := make([]*stream.Arena, workers)
	probes := make([]*obs.StreamProbe, workers)
	type probedResult struct {
		res     stream.Result
		metrics *obs.StreamMetrics
	}
	err := runpool.RunOrdered(ctx, o.runs, workers,
		func(w, run int) (probedResult, error) {
			if arenas[w] == nil {
				arenas[w] = stream.NewArena()
			}
			if o.probe != nil && probes[w] == nil {
				probes[w] = obs.NewStream(*o.probe)
			}
			res, err := execute(root.Split(uint64(run)), arenas[w], probes[w])
			return probedResult{res, probes[w].Metrics()}, err
		}, func(run int, r probedResult) { emit(streamReport(r.res, r.metrics)) })
	if err != nil {
		return nil, err
	}
	return nil, nil
}

func streamReport(res stream.Result, m *obs.StreamMetrics) Report {
	return Report{
		Reliability:  res.MeanReliability,
		Delivered:    res.Delivered,
		AliveCount:   res.AliveCount,
		MessagesSent: int(res.MessagesSent),
		Rounds:       res.Rounds,
		SpreadMs:     float64(res.End) / float64(time.Millisecond),
		Stream:       m,
		Detail:       res,
	}
}
