package gossipkit

import (
	"errors"
	"math"
	"testing"
)

// TestParseFanout: the untrusted-input constructor errors (matching
// ErrInvalidParams) where the panicking constructors would panic.
func TestParseFanout(t *testing.T) {
	valid := []struct {
		kind string
		mean float64
		name string
	}{
		{"poisson", 4, "Poisson(4)"},
		{"fixed", 3.7, "Fixed(3)"},
		{"geometric", 4, "Geometric(0.2)"},
		{"uniform", 5, "Uniform(1..5)"},
	}
	for _, tc := range valid {
		d, err := ParseFanout(tc.kind, tc.mean)
		if err != nil {
			t.Errorf("ParseFanout(%q, %g): %v", tc.kind, tc.mean, err)
			continue
		}
		if d.Name() != tc.name {
			t.Errorf("ParseFanout(%q, %g) = %s, want %s", tc.kind, tc.mean, d.Name(), tc.name)
		}
	}
	invalid := []struct {
		kind string
		mean float64
	}{
		{"poisson", -1},
		{"poisson", math.NaN()},
		{"poisson", math.Inf(1)},
		{"fixed", math.Inf(-1)},
		{"uniform", 0.5},
		{"cauchy", 4},
	}
	for _, tc := range invalid {
		d, err := ParseFanout(tc.kind, tc.mean)
		if err == nil {
			t.Errorf("ParseFanout(%q, %g) = %v, want error", tc.kind, tc.mean, d.Name())
			continue
		}
		if !errors.Is(err, ErrInvalidParams) {
			t.Errorf("ParseFanout(%q, %g) error %v does not match ErrInvalidParams", tc.kind, tc.mean, err)
		}
	}
}

func TestFacadeQuickstartFlow(t *testing.T) {
	p := Params{N: 1000, Fanout: Poisson(4), AliveRatio: 0.9}
	pred, err := Predict(p)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Reliability < 0.9 || pred.Reliability > 1 {
		t.Fatalf("prediction %.4f out of expected band", pred.Reliability)
	}
	est, err := MeasureGiantComponent(p, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-pred.Reliability) > 0.03 {
		t.Errorf("measured %.4f vs predicted %.4f", est.Mean, pred.Reliability)
	}
}

func TestFacadeDistributions(t *testing.T) {
	r := NewRNG(1)
	for _, d := range []Distribution{
		Poisson(3), FixedFanout(4), GeometricFanout(0.4), UniformFanout(1, 5),
	} {
		if d.Mean() <= 0 {
			t.Errorf("%s mean %g", d.Name(), d.Mean())
		}
		if k := d.Sample(r); k < 0 {
			t.Errorf("%s sampled %d", d.Name(), k)
		}
	}
}

func TestFacadeDesignEquations(t *testing.T) {
	z, err := FanoutForReliability(0.99, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if z <= 1/0.8 {
		t.Errorf("fanout %g below critical", z)
	}
	if qc := CriticalRatio(4); qc != 0.25 {
		t.Errorf("critical ratio %g", qc)
	}
	tmin, err := ExecutionsForSuccess(Params{N: 1000, Fanout: Poisson(4), AliveRatio: 0.9}, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if tmin < 1 || tmin > 10 {
		t.Errorf("executions %d", tmin)
	}
}

func TestFacadeExecuteAndViews(t *testing.T) {
	r := NewRNG(7)
	pv := PartialViews(200, 1, r)
	p := Params{N: 200, Fanout: Poisson(4), AliveRatio: 1, View: pv}
	res, err := Execute(p, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered < 1 {
		t.Error("nothing delivered")
	}
	full := FullView(200)
	if full.N() != 200 || full.Degree(3) != 199 {
		t.Error("full view wrong")
	}
}

func TestFacadeNetworkExecution(t *testing.T) {
	p := Params{N: 300, Fanout: Poisson(5), AliveRatio: 1}
	res, err := ExecuteOnNetwork(p, NetConfig{}, NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered < 1 || res.Net.Sent == 0 {
		t.Errorf("network execution: %+v", res.Result)
	}
}

func TestFacadeSuccessProtocol(t *testing.T) {
	out, err := RunSuccess(SuccessParams{
		Params:      Params{N: 300, Fanout: Poisson(5), AliveRatio: 0.9},
		Executions:  5,
		Simulations: 4,
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if out.ReceiptHistogram.Total() != 4*270 {
		t.Errorf("histogram total %d", out.ReceiptHistogram.Total())
	}
}
