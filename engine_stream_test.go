package gossipkit

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

func testStreamConfig() StreamConfig {
	return StreamConfig{
		N:        64,
		Rate:     300,
		Duration: 200 * time.Millisecond,
		Fanout:   FixedFanout(3),
	}
}

func testStreamNet() NetConfig {
	return NetConfig{Latency: UniformLatency(time.Millisecond, 5*time.Millisecond)}
}

func TestStreamEngineSingleRun(t *testing.T) {
	out, err := Run(context.Background(), Stream{Config: testStreamConfig(), Net: testStreamNet()},
		WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if out.Engine != "stream" || out.Runs != 1 {
		t.Fatalf("engine %q runs %d", out.Engine, out.Runs)
	}
	res, ok := out.Reports[0].Detail.(StreamResult)
	if !ok {
		t.Fatalf("Detail is %T, want StreamResult", out.Reports[0].Detail)
	}
	if res.Published == 0 {
		t.Fatal("no messages published")
	}
	if out.Reports[0].Reliability != res.MeanReliability {
		t.Fatal("Report.Reliability is not the mean per-message reliability")
	}
}

func TestStreamEngineWorkerInvariance(t *testing.T) {
	spec := Stream{Config: testStreamConfig(), Net: testStreamNet()}
	a, err := RunMany(context.Background(), spec, 6, WithSeed(9), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMany(context.Background(), spec, 6, WithSeed(9), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("outcome differs across worker counts")
	}
}

func TestStreamEngineProbeCompose(t *testing.T) {
	spec := Stream{Config: testStreamConfig(), Net: testStreamNet()}
	out, err := RunMany(context.Background(), spec, 3, WithSeed(4), WithProbe(ProbeOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if out.Stream == nil || out.Stream.Runs != 3 {
		t.Fatalf("merged stream metrics %+v, want 3 runs", out.Stream)
	}
	if out.Metrics != nil {
		t.Fatal("single-rumor merged metrics set on a stream run")
	}
	for _, r := range out.Reports {
		if r.Stream == nil || len(r.Stream.Occupancy) == 0 {
			t.Fatal("report missing stream telemetry")
		}
	}

	// Zero overhead when off: probed and bare outcomes agree run for run.
	bare, err := RunMany(context.Background(), spec, 3, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range bare.Reports {
		if !reflect.DeepEqual(bare.Reports[i].Detail, out.Reports[i].Detail) {
			t.Fatalf("run %d: probe perturbed the stream", i)
		}
	}
}

func TestStreamEngineShardsCompose(t *testing.T) {
	spec := Stream{Config: testStreamConfig(), Net: testStreamNet()}
	single, err := Run(context.Background(), spec, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Run(context.Background(), spec, WithSeed(7), WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(single.Reports[0].Detail, sharded.Reports[0].Detail) {
		t.Fatal("WithShards(1) diverged from the single-kernel run")
	}
	multi, err := Run(context.Background(), spec, WithSeed(7), WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	m := multi.Reports[0].Detail.(StreamResult)
	s := single.Reports[0].Detail.(StreamResult)
	if len(m.Messages) != len(s.Messages) || m.AliveCount != s.AliveCount {
		t.Fatal("sharded schedule or mask diverged from single-kernel run")
	}
}

func TestStreamEngineTopologyCompose(t *testing.T) {
	spec := Stream{Config: testStreamConfig(), Net: testStreamNet()}
	out, err := Run(context.Background(), spec, WithSeed(5), WithTopology(KOutTopology(8)))
	if err != nil {
		t.Fatal(err)
	}
	res := out.Reports[0].Detail.(StreamResult)
	if res.Published == 0 {
		t.Fatal("no messages published over the overlay")
	}
	// A conflictingly-set view is rejected.
	bad := spec
	bad.Config.View = FullView(bad.Config.N)
	if _, err := Run(context.Background(), bad, WithTopology(KOutTopology(8))); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("view conflict not rejected: %v", err)
	}
}

func TestStreamEngineValidation(t *testing.T) {
	if _, err := Run(context.Background(), Stream{}); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("zero spec not rejected: %v", err)
	}
}

// TestStreamScenarioExecutor threads a crash-wave campaign through a
// live stream via the scenario seam.
func TestStreamScenarioExecutor(t *testing.T) {
	s := NewScenario("stream-wave", "crash wave under streaming load").
		At(50*time.Millisecond, CrashFraction(0.25))
	spec := Campaign{
		Scenarios: []*Scenario{s},
		Config: ScenarioRunConfig{
			Net:      testStreamNet(),
			Executor: StreamExecutor(testStreamConfig()),
		},
	}
	out, err := Run(context.Background(), spec, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := out.Reports[0].Detail.(ScenarioReport)
	if !ok {
		t.Fatalf("Detail is %T, want ScenarioReport", out.Reports[0].Detail)
	}
	if rep.Crashed == 0 {
		t.Fatal("campaign crashed nobody")
	}
	if rep.Reliability <= 0 || rep.Reliability > 1 {
		t.Fatalf("stream campaign reliability %g out of range", rep.Reliability)
	}
	if rep.UpAtEnd >= testStreamConfig().N {
		t.Fatalf("up-at-end %d not reduced by the crash wave", rep.UpAtEnd)
	}

	again, err := Run(context.Background(), spec, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, again) {
		t.Fatal("stream campaign not deterministic")
	}
}
