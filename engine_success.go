package gossipkit

import (
	"context"
	"fmt"

	"gossipkit/internal/core"
)

// SuccessSim summarizes one simulation of the success protocol.
type SuccessSim = core.SuccessSim

// Success is the engine for the repeated-execution success protocol
// S(q, P, t) (paper §5.2): the source gossips the same message t times and
// the protocol succeeds when every nonfailed member received it at least
// once.
//
// A single Run executes Params.Simulations independent simulations as the
// spec declares; RunMany(n) overrides the simulation count with n. Either
// way one Report is emitted per simulation (Detail: SuccessSim) and
// Outcome.Aggregate is the SuccessOutcome.
type Success struct {
	// Params configures the protocol (model params, Executions t,
	// Simulations).
	Params SuccessParams
}

// Name implements Engine.
func (Success) Name() string { return "success" }

func (s Success) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	p := s.Params
	if o.many {
		p.Simulations = o.runs
	}
	if err := p.Validate(); err != nil {
		return nil, invalid(err)
	}
	if o.rng != nil {
		return nil, fmt.Errorf("%w: the success engine derives RNG streams from seeds; use WithSeed", ErrInvalidParams)
	}
	if !o.topology.IsUniform() {
		return nil, fmt.Errorf("%w: the success protocol runs on the uniform model; use MonteCarlo or Network with WithTopology for overlay reliability", ErrInvalidParams)
	}
	out, err := core.RunSuccessCtx(ctx, p, o.seed, o.workers, func(sim int, ss SuccessSim) {
		emit(Report{Reliability: ss.MeanReliability, Detail: ss})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
