package gossipkit

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func probedNetworkSpec() Network {
	return Network{
		Params: Params{N: 300, Fanout: Poisson(5), AliveRatio: 0.9},
		Net:    NetConfig{Latency: UniformLatency(time.Millisecond, 5*time.Millisecond)},
	}
}

// TestWithProbeNetworkMetrics: a probed Network sweep carries per-run and
// merged telemetry, and the curves agree with the headline results.
func TestWithProbeNetworkMetrics(t *testing.T) {
	out, err := RunMany(context.Background(), probedNetworkSpec(), 4,
		WithSeed(42), WithProbe(ProbeOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics == nil {
		t.Fatal("probed outcome has no merged metrics")
	}
	if out.Metrics.Runs != 4 {
		t.Fatalf("merged %d runs, want 4", out.Metrics.Runs)
	}
	var meanDelivered float64
	for i, r := range out.Reports {
		if r.Metrics == nil {
			t.Fatalf("report %d has no metrics", i)
		}
		inf := r.Metrics.Infected
		if len(inf) == 0 || inf[len(inf)-1] != int64(r.Delivered) {
			t.Errorf("report %d final infected %v, delivered %d", i, inf, r.Delivered)
		}
		if r.Metrics.Latency.Total == 0 {
			t.Errorf("report %d has an empty latency histogram", i)
		}
		meanDelivered += float64(r.Delivered) / 4
	}
	curve := out.Metrics.InfectedMeans()
	if got := curve[len(curve)-1]; got != meanDelivered {
		t.Errorf("merged final infected mean %g, mean delivered %g", got, meanDelivered)
	}
}

// TestWithProbeDoesNotPerturbResults: probed runs are bit-identical to
// unprobed ones — the probe consumes no randomness and schedules nothing.
func TestWithProbeDoesNotPerturbResults(t *testing.T) {
	plain, err := RunMany(context.Background(), probedNetworkSpec(), 5, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	probed, err := RunMany(context.Background(), probedNetworkSpec(), 5,
		WithSeed(7), WithProbe(ProbeOptions{TraceCapacity: 64}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Reports {
		p, q := plain.Reports[i], probed.Reports[i]
		if p.Reliability != q.Reliability || p.Delivered != q.Delivered ||
			p.MessagesSent != q.MessagesSent || p.SpreadMs != q.SpreadMs {
			t.Fatalf("run %d diverged under probe: %+v vs %+v", i, p, q)
		}
	}
}

// TestWithProbeWorkerCountInvariance: the merged curves are byte-identical
// for any WithWorkers count — on the Network engine and on a Campaign
// sweep (whose aggregate additionally carries per-scenario curves).
func TestWithProbeWorkerCountInvariance(t *testing.T) {
	curveCSV := func(m *MergedMetrics) string {
		var b strings.Builder
		if err := m.WriteCurveCSV(&b, "x", true); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	t.Run("network", func(t *testing.T) {
		var base string
		for _, workers := range []int{1, 4} {
			out, err := RunMany(context.Background(), probedNetworkSpec(), 6,
				WithSeed(99), WithWorkers(workers), WithProbe(ProbeOptions{}))
			if err != nil {
				t.Fatal(err)
			}
			csv := curveCSV(out.Metrics)
			if workers == 1 {
				base = csv
			} else if csv != base {
				t.Fatalf("merged curves differ between 1 and %d workers", workers)
			}
		}
	})
	t.Run("campaign", func(t *testing.T) {
		spec := Campaign{
			Scenarios: DefaultScenarioSuite()[:2],
			Config: ScenarioRunConfig{
				Params: Params{N: 300, Fanout: Poisson(5), AliveRatio: 1},
				Net:    NetConfig{Latency: UniformLatency(time.Millisecond, 5*time.Millisecond)},
			},
		}
		var base, baseCurves string
		for _, workers := range []int{1, 5} {
			out, err := RunMany(context.Background(), spec, 3,
				WithSeed(123), WithWorkers(workers), WithProbe(ProbeOptions{}))
			if err != nil {
				t.Fatal(err)
			}
			sweep := out.Aggregate.(*ScenarioSweepResult)
			if len(sweep.Curves) != 2 {
				t.Fatalf("sweep has %d curve sets, want 2", len(sweep.Curves))
			}
			curves, err := sweep.CurvesCSV()
			if err != nil {
				t.Fatal(err)
			}
			csv := curveCSV(out.Metrics)
			if workers == 1 {
				base, baseCurves = csv, curves
			} else if csv != base || curves != baseCurves {
				t.Fatalf("curves differ between 1 and %d workers", workers)
			}
		}
	})
}

// TestWithProbeProtocolEngine: baseline protocol engines report
// rounds-to-delivery through the hops histogram.
func TestWithProbeProtocolEngine(t *testing.T) {
	spec := Pbcast{Params: PbcastParams{N: 300, Fanout: 3, Rounds: 8, AliveRatio: 0.9}}
	out, err := RunMany(context.Background(), spec, 3, WithSeed(5), WithProbe(ProbeOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics == nil || out.Metrics.Runs != 3 {
		t.Fatalf("merged metrics %+v", out.Metrics)
	}
	if out.Metrics.Hops.Total == 0 {
		t.Error("no rounds-to-delivery observations")
	}
	if out.Metrics.Fanout.Total == 0 {
		t.Error("no fanout observations")
	}
}

// TestWithProbeRejectedOnGrids: the compare grid and Campaign grid axes
// reject WithProbe with ErrInvalidParams.
func TestWithProbeRejectedOnGrids(t *testing.T) {
	cmp := Compare{Scenarios: DefaultScenarioSuite()[:1], Paper: true,
		Config: ScenarioRunConfig{Params: Params{N: 300, Fanout: Poisson(5), AliveRatio: 1}}}
	if _, err := RunMany(context.Background(), cmp, 2, WithProbe(ProbeOptions{})); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("compare+probe error %v, want ErrInvalidParams", err)
	}
	grid := Campaign{Scenarios: DefaultScenarioSuite()[:1],
		Config: ScenarioRunConfig{Params: Params{N: 300, Fanout: Poisson(5), AliveRatio: 1}},
		Qs:     []float64{0.9, 1}}
	if _, err := RunMany(context.Background(), grid, 2, WithProbe(ProbeOptions{})); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("grid+probe error %v, want ErrInvalidParams", err)
	}
}

// TestWithProbeIgnoredOffSubstrate: engines with no DES substrate have
// nothing to observe; the option is a documented no-op there.
func TestWithProbeIgnoredOffSubstrate(t *testing.T) {
	p := Params{N: 300, Fanout: Poisson(5), AliveRatio: 0.9}
	out, err := Run(context.Background(), Analytic{Params: p}, WithProbe(ProbeOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics != nil {
		t.Error("analytic outcome unexpectedly carries metrics")
	}
}
