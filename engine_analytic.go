package gossipkit

import (
	"context"
	"fmt"

	"gossipkit/internal/core"
)

// Analytic is the engine for the paper's generalized-random-graph model:
// it evaluates Eq. 11's reliability R(q, P) and the critical ratio q_c
// without any simulation. The run is deterministic and seed-free; under
// RunMany it emits one identical Report per replication so analytic
// predictions slot into the same observer pipelines as simulations.
//
// Outcome.Aggregate is the Prediction; each Report.Detail carries it too.
type Analytic struct {
	// Params is the gossip model Gossip(n, P, q) to evaluate.
	Params Params
}

// Name implements Engine.
func (Analytic) Name() string { return "analytic" }

func (s Analytic) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	if o.rng != nil {
		return nil, fmt.Errorf("%w: the analytic engine consumes no randomness; drop WithRNG", ErrInvalidParams)
	}
	if !o.topology.IsUniform() {
		return nil, fmt.Errorf("%w: Eq. 11 assumes uniform target selection; use MonteCarlo with WithTopology for overlay reliability", ErrInvalidParams)
	}
	pred, err := core.Predict(s.Params)
	if err != nil {
		return nil, invalid(err)
	}
	for i := 0; i < o.runs; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		emit(Report{Reliability: pred.Reliability, Detail: pred})
	}
	return pred, nil
}
