package gossipkit

import (
	"context"
	"fmt"

	"gossipkit/internal/core"
	"gossipkit/internal/topology"
	"gossipkit/internal/xrand"
)

// Metric selects what a MonteCarlo replication measures.
type Metric int

const (
	// GiantComponent measures the giant out-component of the sampled
	// gossip graph as a share of nonfailed members — the paper's
	// simulated reliability metric, the one Eq. 11 predicts. The default.
	GiantComponent Metric = iota
	// SourceReach measures the directed reach of one actual multicast
	// from the source (≈ S² for Poisson fanout, due to early die-out).
	SourceReach
)

func (m Metric) String() string {
	switch m {
	case GiantComponent:
		return "giant-component"
	case SourceReach:
		return "source-reach"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// ComponentResult is the giant-component view of one execution.
type ComponentResult = core.ComponentResult

// MonteCarlo is the engine for graph-sampling reliability estimation: each
// replication draws a failure mask and a gossip graph and measures Metric.
//
// Under RunMany, Outcome.Aggregate is a ComponentEstimate (GiantComponent)
// or an Estimate (SourceReach); Report.Detail is the per-run
// ComponentResult or Result.
type MonteCarlo struct {
	// Params is the gossip model Gossip(n, P, q) under estimation.
	Params Params
	// Metric selects the measured quantity; default GiantComponent.
	Metric Metric
}

// Name implements Engine.
func (s MonteCarlo) Name() string { return "montecarlo:" + s.Metric.String() }

func (s MonteCarlo) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	if err := s.Params.Validate(); err != nil {
		return nil, invalid(err)
	}
	switch s.Metric {
	case GiantComponent, SourceReach:
	default:
		return nil, fmt.Errorf("%w: unknown Monte-Carlo metric %v", ErrInvalidParams, s.Metric)
	}
	if err := o.topology.Validate(s.Params.N); err != nil {
		return nil, invalid(err)
	}
	if !o.topology.IsUniform() {
		if s.Params.View != nil {
			return nil, fmt.Errorf("%w: WithTopology conflicts with a caller-set Params.View", ErrInvalidParams)
		}
		// Quenched overlay disorder: one overlay is generated from the base
		// seed (or, under WithRNG, a non-consuming split of the caller's
		// stream) and shared read-only across replications, while the
		// failure mask and gossip graph are re-drawn per run. That is the
		// estimand the scenario runner's corrected prediction measures.
		src := o.rng
		if src == nil {
			src = xrand.New(o.seed)
		}
		ov, err := o.topology.Build(s.Params.N, src.Split(topology.Split))
		if err != nil {
			return nil, invalid(err)
		}
		s.Params.View = ov
	}

	if o.rng != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		switch s.Metric {
		case SourceReach:
			res, err := core.ExecuteOnce(s.Params, o.rng)
			if err != nil {
				return nil, err
			}
			emit(reachReport(res))
		case GiantComponent:
			res, err := core.ComponentReliability(s.Params, o.rng)
			if err != nil {
				return nil, err
			}
			emit(componentReport(res))
		}
		return nil, nil
	}

	switch s.Metric {
	case SourceReach:
		est, err := core.EstimateReliabilityCtx(ctx, s.Params, o.runs, o.seed, o.workers,
			func(run int, res Result) { emit(reachReport(res)) })
		if err != nil {
			return nil, err
		}
		return est, nil
	default: // GiantComponent
		est, err := core.EstimateComponentReliabilityCtx(ctx, s.Params, o.runs, o.seed, o.workers,
			func(run int, res ComponentResult) { emit(componentReport(res)) })
		if err != nil {
			return nil, err
		}
		return est, nil
	}
}

func reachReport(res Result) Report {
	return Report{
		Reliability:  res.Reliability,
		Delivered:    res.Delivered,
		AliveCount:   res.AliveCount,
		MessagesSent: res.MessagesSent,
		Rounds:       res.Rounds,
		Detail:       res,
	}
}

func componentReport(res ComponentResult) Report {
	return Report{
		Reliability:  res.Reliability,
		Delivered:    res.GiantSize,
		AliveCount:   res.AliveCount,
		MessagesSent: res.MessagesSent,
		Detail:       res,
	}
}
