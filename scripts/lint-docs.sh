#!/bin/sh
# lint-docs.sh — fail CI when a package lacks its doc comment.
#
# Every internal/ package must carry a `// Package <name> ...` comment (by
# convention in doc.go, but any non-test .go file counts) stating its role,
# paper section if any, and determinism/alloc guarantees — see
# ARCHITECTURE.md. Every cmd/ binary must likewise open with a
# `// Command <name> ...` comment documenting its usage. This is a grep,
# not a linter dependency, so it runs anywhere a POSIX shell does.
set -eu
cd "$(dirname "$0")/.."

fail=0
for dir in internal/*/; do
    pkg=$(basename "$dir")
    if ! grep -qs "^// Package $pkg " "$dir"*.go; then
        echo "docs-lint: package $pkg lacks a package comment ('// Package $pkg ...' in $dir)" >&2
        fail=1
    fi
done
for dir in cmd/*/; do
    name=$(basename "$dir")
    if ! grep -qs "^// Command $name " "$dir"*.go; then
        echo "docs-lint: command $name lacks a command comment ('// Command $name ...' in $dir)" >&2
        fail=1
    fi
done
# ARCHITECTURE.md must keep the "Parallel kernel" section in sync with the
# sharded runtime: the section heading plus its load-bearing anchors (the
# entry point, the fallback resolver, and the determinism contract). A
# rename in code without the matching doc update fails here.
for anchor in \
    "## Parallel kernel" \
    "ExecuteOnNetworkSharded" \
    "EffectiveShards" \
    "Determinism contract" \
    "LatencyFloorer"; do
    if ! grep -qs "$anchor" ARCHITECTURE.md; then
        echo "docs-lint: ARCHITECTURE.md lost its Parallel kernel anchor: '$anchor'" >&2
        fail=1
    fi
done
# Likewise the "Topology" section and its load-bearing anchors: the view
# seam, the replay split, the corrected prediction, and the WAN latency
# matrix. Renaming any of these in code without the doc update fails here.
for anchor in \
    "## Topology" \
    "SampleTargets" \
    "topology.Split" \
    "ComponentReliability" \
    "ZoneLatency"; do
    if ! grep -qs "$anchor" ARCHITECTURE.md; then
        echo "docs-lint: ARCHITECTURE.md lost its Topology anchor: '$anchor'" >&2
        fail=1
    fi
done
# Likewise the "Streaming workloads" section and its load-bearing anchors:
# the tag packing and its boxed-send fallback counter, the message-id cap,
# the lpbcast eviction policy, the conservation identity, the probe
# family, and the batched-wire/summary-mode seams (the batch primitive,
# its entry counters, the slab-leak invariant, and the summary switch).
# Renaming any of these in code without the doc update fails here.
for anchor in \
    "## Streaming workloads" \
    "MaxMessagesCap" \
    "BoxedSends" \
    "EvictLpbcast" \
    "Inserted = Evicted + Expired + Resident" \
    "StreamProbe" \
    "SendBatch" \
    "BatchEntries" \
    "SlabsInUse" \
    "SummaryOnly"; do
    if ! grep -qs "$anchor" ARCHITECTURE.md; then
        echo "docs-lint: ARCHITECTURE.md lost its Streaming workloads anchor: '$anchor'" >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "docs-lint: add the missing package/command comments (doc.go preferred for packages)" >&2
    exit 1
fi
echo "docs-lint: all internal packages and cmd binaries documented"
