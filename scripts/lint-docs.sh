#!/bin/sh
# lint-docs.sh — fail CI when an internal package has no package comment.
#
# Every internal/ package must carry a `// Package <name> ...` comment (by
# convention in doc.go, but any non-test .go file counts) stating its role,
# paper section if any, and determinism/alloc guarantees — see
# ARCHITECTURE.md. This is a grep, not a linter dependency, so it runs
# anywhere a POSIX shell does.
set -eu
cd "$(dirname "$0")/.."

fail=0
for dir in internal/*/; do
    pkg=$(basename "$dir")
    if ! grep -qs "^// Package $pkg " "$dir"*.go; then
        echo "docs-lint: package $pkg lacks a package comment ('// Package $pkg ...' in $dir)" >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "docs-lint: add the missing package comments (doc.go preferred)" >&2
    exit 1
fi
echo "docs-lint: all internal packages documented"
