#!/bin/sh
# lint-api.sh — fail CI when cmd/ or examples/ reference deprecated facade
# shims.
#
# The pre-Engine entry points (Execute, ExecuteOnNetwork[Reusing],
# MeasureReliability, MeasureGiantComponent, RunSuccess, RunScenario,
# SweepScenarios, SweepScenarioGrid, NewNetArena) survive only as
# back-compat shims over gossipkit.Run/RunMany; everything the repository
# itself ships must sit on the unified engine API. This is a grep, not a
# linter dependency, so it runs anywhere a POSIX shell does.
set -eu
cd "$(dirname "$0")/.."

deprecated='Execute|ExecuteOnNetwork|ExecuteOnNetworkReusing|MeasureReliability|MeasureGiantComponent|RunSuccess|RunScenario|SweepScenarios|SweepScenarioGrid|NewNetArena'

for dir in cmd examples; do
    if [ ! -d "$dir" ]; then
        echo "api-lint: directory $dir/ not found; the gate has nothing to scan" >&2
        exit 2
    fi
done

# grep exits 0 on match, 1 on no match, >=2 on error. Only 1 means clean;
# a hard error (unreadable tree, bad pattern) must fail the gate, not pass it.
rc=0
hits=$(grep -rnE "gossipkit\.($deprecated)\(" cmd examples) || rc=$?
case $rc in
0)
    echo "api-lint: deprecated facade shims referenced outside the compat layer:" >&2
    echo "$hits" >&2
    echo "api-lint: migrate to gossipkit.Run/RunMany (see the migration table in README.md)" >&2
    exit 1
    ;;
1)
    echo "api-lint: cmd/ and examples/ are clean of deprecated shims"
    ;;
*)
    echo "api-lint: grep failed with exit status $rc" >&2
    exit "$rc"
    ;;
esac
