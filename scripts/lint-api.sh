#!/bin/sh
# lint-api.sh — fail CI when cmd/ or examples/ bypass the facade's engine
# API.
#
# Two gates, both greps (no linter dependency, runs anywhere a POSIX shell
# does):
#
#   1. The pre-Engine entry points (Execute, ExecuteOnNetwork[Reusing],
#      MeasureReliability, MeasureGiantComponent, RunSuccess, RunScenario,
#      SweepScenarios, SweepScenarioGrid, NewNetArena) survive only as
#      back-compat shims over gossipkit.Run/RunMany; everything the
#      repository itself ships must sit on the unified engine API.
#   2. The legacy synchronous round loops (protocols.RunPbcast,
#      RunLpbcast, RunAntiEntropy, RunRDG, RunLRG, RunFlooding) are the
#      equivalence ORACLE for the DES protocol runtime, not an execution
#      path: cmd/ and examples/ must reach the baselines through the
#      engine specs (Pbcast, ..., Flooding, Compare), which run on the
#      sim kernel + simnet substrate. Importing internal/protocols from
#      cmd/ or examples/ is blocked for the same reason — the facade specs
#      are the only supported protocol surface. (Other internal imports —
#      the sim/simnet substrate the node demos build on — stay allowed.)
set -eu
cd "$(dirname "$0")/.."

deprecated='Execute|ExecuteOnNetwork|ExecuteOnNetworkReusing|MeasureReliability|MeasureGiantComponent|RunSuccess|RunScenario|SweepScenarios|SweepScenarioGrid|NewNetArena'
legacy_loops='RunPbcast|RunLpbcast|RunAntiEntropy|RunRDG|RunLRG|RunFlooding'

for dir in cmd examples; do
    if [ ! -d "$dir" ]; then
        echo "api-lint: directory $dir/ not found; the gate has nothing to scan" >&2
        exit 2
    fi
done

# scan PATTERN LABEL HINT — grep exits 0 on match, 1 on no match, >=2 on
# error. Only 1 means clean; a hard error (unreadable tree, bad pattern)
# must fail the gate, not pass it.
scan() {
    rc=0
    hits=$(grep -rnE "$1" cmd examples) || rc=$?
    case $rc in
    0)
        echo "api-lint: $2:" >&2
        echo "$hits" >&2
        echo "api-lint: $3" >&2
        exit 1
        ;;
    1) ;;
    *)
        echo "api-lint: grep failed with exit status $rc" >&2
        exit "$rc"
        ;;
    esac
}

scan "gossipkit\.($deprecated)\(" \
    "deprecated facade shims referenced outside the compat layer" \
    "migrate to gossipkit.Run/RunMany (see the migration table in README.md)"
scan "($legacy_loops)\(" \
    "legacy round-loop entry points referenced" \
    "the pure round loops are the DES runtime's equivalence oracle; use the engine specs (gossipkit.Pbcast, ..., gossipkit.Compare)"
scan "\"gossipkit/internal/protocols\"" \
    "internal/protocols imported" \
    "reach the baselines through the facade engine specs (gossipkit.Pbcast, ..., gossipkit.Compare)"

echo "api-lint: cmd/ and examples/ are clean (no deprecated shims, legacy round loops, or protocols imports)"
