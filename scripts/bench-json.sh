#!/bin/sh
# bench-json.sh — run the four headline benchmarks and emit BENCH_<date>.json
# so the perf trajectory is machine-readable across PRs.
#
# Headline set (internal/core):
#   ExecuteOnNetworkMillion             single kernel, probes off (alloc guard)
#   ExecuteOnNetworkMillionProbed       single kernel, probes on (telemetry cost)
#   ExecuteOnNetworkShardedMillion/shards=1   sharded entry point, one shard
#                                             (the <=5% overhead claim)
#   ExecuteOnNetwork/n=100000           the sweep-sized hot path
#   ExecuteOnNetworkTopology/*          n=10^5 uniform vs k-out overlay
#                                       (the <=10% overlay-lookup budget)
#   StreamSteadyState/n=100k/*          n=10^5 streaming workload under load
#                                       (internal/stream, alloc-guarded)
#   StreamSteadyState/rumors=10k/*      10^4-rumor push stream, per-id vs
#                                       batched wire (the batching speedup;
#                                       msgs/s counts id entries for both)
#   StreamSteadyState/rumors=1M/*       10^6 concurrent rumors, batched wire
#                                       + summary-only accounting (the O(1)-
#                                       per-message alloc guard)
#
# Each record carries ns/op, msgs/s, and allocs/op parsed from `go test
# -bench` output — awk only, no external JSON tooling. The n=10⁷ benchmarks
# stay out (multi-GB, minutes-long); on a 1-vCPU CI runner the single-shard
# numbers are the meaningful ones and the multicore sharded sub-benchmarks
# can be added to BENCH regexp below when run on real hardware.
#
# Usage: scripts/bench-json.sh [outfile]        (default BENCH_<YYYY-MM-DD>.json)
#        BENCHTIME=3x scripts/bench-json.sh     (more stable numbers)
set -eu
cd "$(dirname "$0")/.."

out=${1:-BENCH_$(date +%Y-%m-%d).json}
benchtime=${BENCHTIME:-1x}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# No pipe: under plain sh a `go test | tee` failure would be masked by
# tee's exit status, and the Million benchmark doubles as the alloc guard.
go test ./internal/core -run XXX \
    -bench 'ExecuteOnNetworkMillion(Probed)?$|ExecuteOnNetworkShardedMillion/shards=1$|ExecuteOnNetwork/n=100000$|ExecuteOnNetworkTopology/' \
    -benchtime "$benchtime" > "$raw"
go test ./internal/stream -run XXX \
    -bench 'StreamSteadyState$' \
    -benchtime "$benchtime" >> "$raw"
cat "$raw"

awk -v date="$(date +%Y-%m-%d)" -v benchtime="$benchtime" '
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name); sub(/^Benchmark/, "", name)
    iters = $2
    ns = ""; msgs = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op")     ns = $i
        if ($(i + 1) == "msgs/sec")  msgs = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    n++
    rec[n] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_op\": %s, \"msgs_per_sec\": %s, \"allocs_op\": %s}",
                     name, iters, ns == "" ? "null" : ns,
                     msgs == "" ? "null" : msgs, allocs == "" ? "null" : allocs)
}
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", rec[i], i < n ? "," : ""
    printf "  ]\n}\n"
}' "$raw" > "$out"

echo "bench-json: wrote $out"
