module gossipkit

go 1.24
