package gossipkit

import (
	"context"
	"time"

	"gossipkit/internal/core"
	"gossipkit/internal/obs"
	"gossipkit/internal/protocols"
	"gossipkit/internal/runpool"
	"gossipkit/internal/stats"
	"gossipkit/internal/xrand"
)

// The protocol-comparison layer: the baseline dissemination protocols the
// paper positions itself against (§2 Related Work), each as an Engine so
// they compose with Run/RunMany, cancellation, and observers exactly like
// the paper's own algorithm.
//
// Every baseline executes on the shared discrete-event substrate (the sim
// kernel driving round ticks, every gossip/digest/NACK/reply routed through
// the simulated network), so the Net field subjects a baseline to the same
// latency models, message loss, and partitions as the paper's algorithm.
// The zero NetConfig — zero latency, no loss — reproduces the legacy
// synchronous round loops exactly (internal/protocols pins this per
// protocol against golden values).

// PbcastParams configures the Pbcast round-based baseline (Bimodal
// Multicast, Birman et al.).
type PbcastParams = protocols.PbcastParams

// LpbcastParams configures the lpbcast bounded-buffer baseline (Eugster et
// al.).
type LpbcastParams = protocols.LpbcastParams

// AntiEntropyParams configures the classic anti-entropy epidemic (Demers
// et al.).
type AntiEntropyParams = protocols.AntiEntropyParams

// AntiEntropyMode selects the anti-entropy exchange direction.
type AntiEntropyMode = protocols.Mode

// Anti-entropy exchange directions.
const (
	Push     = protocols.Push
	Pull     = protocols.Pull
	PushPull = protocols.PushPull
)

// RDGParams configures the Route-Driven-Gossip baseline (Luo, Eugster &
// Hubaux).
type RDGParams = protocols.RDGParams

// LRGParams configures the local-retransmission gossip baseline (Jia et
// al.).
type LRGParams = protocols.LRGParams

// FloodingParams configures the best-effort flooding baseline.
type FloodingParams = protocols.FloodingParams

// ProtocolSpec is a baseline protocol parameter set that can run on the
// discrete-event substrate: PbcastParams, LpbcastParams, AntiEntropyParams,
// RDGParams, LRGParams, and FloodingParams all implement it. The Compare
// engine and the scenario executors take any mix of them.
type ProtocolSpec = protocols.Spec

// ProtocolResult is the common outcome report of the protocol baselines.
type ProtocolResult = protocols.Result

// LpbcastResult reports lpbcast's per-event delivery.
type LpbcastResult = protocols.LpbcastResult

// AntiEntropyResult extends ProtocolResult with the per-round infection
// curve.
type AntiEntropyResult = protocols.AntiEntropyResult

// RDGResult extends ProtocolResult with recovery accounting.
type RDGResult = protocols.RDGResult

// ProtocolSweep is Outcome.Aggregate for RunMany over a protocol baseline
// engine: Estimate-style moments of the replications, reduced in run order
// (deterministic for any worker count).
type ProtocolSweep struct {
	// Protocol names the baseline that ran.
	Protocol string
	// Runs is the number of completed replications.
	Runs int
	// Reliability aggregates each run's headline delivery ratio
	// (delivered/alive; mean per-event delivery for lpbcast).
	Reliability Moments
	// SurvivorReliability aggregates delivery over the members still up
	// when each run drained — identical to Reliability under the static
	// mask alone, lower when Net faults removed members mid-run.
	SurvivorReliability Moments
	// Messages aggregates protocol messages per run.
	Messages Moments
	// Rounds aggregates rounds to quiescence per run.
	Rounds Moments
	// SpreadMs aggregates each run's last first-receipt time. All zeros
	// under the default zero-latency network.
	SpreadMs Moments
}

// Pbcast is the engine for the round-based anti-entropy baseline: every
// member holding the message gossips every round, removing the single-shot
// die-out failure mode at the cost of more messages. Report.Detail is the
// per-run ProtocolResult.
type Pbcast struct {
	Params PbcastParams
	// Net is the simulated-network substrate the protocol's messages
	// cross; the zero value (no latency, no loss) reproduces the legacy
	// synchronous round loop exactly.
	Net NetConfig
	// RoundInterval paces the gossip round ticks; zero defaults to Net's
	// latency bound (20ms for unbounded models, 1ms with no latency
	// model), so rounds do not pipeline into still-airborne messages
	// unless asked to.
	RoundInterval time.Duration
}

// Name implements Engine.
func (Pbcast) Name() string { return "pbcast" }

func (s Pbcast) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	return protocolSweep(ctx, o, emit, s.Params, desCfg(s.Net, s.RoundInterval), func(out protocols.DESOutcome) Report {
		return protocolReport(out, out.Detail.(ProtocolResult))
	})
}

// Lpbcast is the engine for the bounded-buffer lpbcast baseline: gossip
// over SCAMP partial views with event buffers that age out under load.
// Report.Reliability is the mean per-event delivery; Report.Detail is the
// per-run LpbcastResult (whose MinReliability shows buffer pressure
// first).
type Lpbcast struct {
	Params LpbcastParams
	// Net is the simulated-network substrate; see Pbcast.Net.
	Net NetConfig
	// RoundInterval paces the round ticks; see Pbcast.RoundInterval.
	RoundInterval time.Duration
}

// Name implements Engine.
func (Lpbcast) Name() string { return "lpbcast" }

func (s Lpbcast) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	return protocolSweep(ctx, o, emit, s.Params, desCfg(s.Net, s.RoundInterval), func(out protocols.DESOutcome) Report {
		res := out.Detail.(LpbcastResult)
		return Report{
			Reliability:  res.MeanReliability,
			AliveCount:   res.AliveCount,
			MessagesSent: res.MessagesSent,
			SpreadMs:     spreadMs(out),
			Detail:       res,
		}
	})
}

// AntiEntropy is the engine for the classic push/pull anti-entropy
// epidemic: each round every alive member contacts one random peer and
// exchanges state per Mode. Report.Detail is the per-run
// AntiEntropyResult, including the infection curve.
type AntiEntropy struct {
	Params AntiEntropyParams
	// Net is the simulated-network substrate; see Pbcast.Net.
	Net NetConfig
	// RoundInterval paces the round ticks; see Pbcast.RoundInterval.
	RoundInterval time.Duration
}

// Name implements Engine.
func (AntiEntropy) Name() string { return "anti-entropy" }

func (s AntiEntropy) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	return protocolSweep(ctx, o, emit, s.Params, desCfg(s.Net, s.RoundInterval), func(out protocols.DESOutcome) Report {
		res := out.Detail.(AntiEntropyResult)
		rep := protocolReport(out, res.Result)
		rep.Detail = res
		return rep
	})
}

// RDG is the engine for the Route-Driven-Gossip baseline: push gossip of
// payloads and packet-id digests over partial views, then NACK-driven pull
// recovery. Report.Detail is the per-run RDGResult.
type RDG struct {
	Params RDGParams
	// Net is the simulated-network substrate; see Pbcast.Net.
	Net NetConfig
	// RoundInterval paces the round ticks; see Pbcast.RoundInterval.
	RoundInterval time.Duration
}

// Name implements Engine.
func (RDG) Name() string { return "rdg" }

func (s RDG) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	return protocolSweep(ctx, o, emit, s.Params, desCfg(s.Net, s.RoundInterval), func(out protocols.DESOutcome) Report {
		res := out.Detail.(RDGResult)
		rep := protocolReport(out, res.Result)
		rep.Detail = res
		return rep
	})
}

// LRG is the engine for local-retransmission gossip: probabilistic
// flooding over a bounded-degree overlay plus NACK-style local repair
// rounds. Report.Detail is the per-run ProtocolResult.
type LRG struct {
	Params LRGParams
	// Net is the simulated-network substrate; see Pbcast.Net.
	Net NetConfig
	// RoundInterval paces the round ticks; see Pbcast.RoundInterval.
	RoundInterval time.Duration
}

// Name implements Engine.
func (LRG) Name() string { return "lrg" }

func (s LRG) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	return protocolSweep(ctx, o, emit, s.Params, desCfg(s.Net, s.RoundInterval), func(out protocols.DESOutcome) Report {
		return protocolReport(out, out.Detail.(ProtocolResult))
	})
}

// Flooding is the engine for the best-effort flooding baseline: forward to
// everyone on first receipt — maximal reliability at Θ(n²) message cost,
// the upper envelope the gossip protocols trade against. Report.Detail is
// the per-run ProtocolResult.
type Flooding struct {
	Params FloodingParams
	// Net is the simulated-network substrate; see Pbcast.Net.
	Net NetConfig
	// RoundInterval paces the round ticks; see Pbcast.RoundInterval.
	RoundInterval time.Duration
}

// Name implements Engine.
func (Flooding) Name() string { return "flooding" }

func (s Flooding) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	return protocolSweep(ctx, o, emit, s.Params, desCfg(s.Net, s.RoundInterval), func(out protocols.DESOutcome) Report {
		return protocolReport(out, out.Detail.(ProtocolResult))
	})
}

// desCfg assembles the DES substrate config of a protocol engine spec.
func desCfg(net NetConfig, roundInterval time.Duration) protocols.DESConfig {
	return protocols.DESConfig{Net: net, RoundInterval: roundInterval}
}

func protocolReport(out protocols.DESOutcome, res ProtocolResult) Report {
	return Report{
		Reliability:  res.Reliability,
		Delivered:    res.Delivered,
		AliveCount:   res.AliveCount,
		MessagesSent: res.MessagesSent,
		Rounds:       res.Rounds,
		SpreadMs:     spreadMs(out),
		Detail:       res,
	}
}

func spreadMs(out protocols.DESOutcome) float64 {
	return float64(out.SpreadTime) / float64(time.Millisecond)
}

// protocolSweep is the shared replication driver of the protocol engines:
// every run executes the spec on the discrete-event substrate over net
// (protocols.RunOnDES), with per-run RNG streams split from the base seed,
// one run-state arena per worker, and run-ordered emission. A WithRNG
// single run consumes the caller's stream directly. Under RunMany the
// per-run results additionally reduce — in run order, so the moments are
// identical for any worker count — into the ProtocolSweep aggregate.
func protocolSweep(ctx context.Context, o *runOptions, emit func(Report), spec ProtocolSpec, cfg protocols.DESConfig, mk func(protocols.DESOutcome) Report) (any, error) {
	if err := spec.Validate(); err != nil {
		return nil, invalid(err)
	}
	// WithTopology threads through to the DES substrate: the runtime
	// generates the overlay per run from a non-consuming split, so the
	// uniform spec keeps the legacy RNG streams byte-identical.
	cfg.Topology = o.topology
	n, _ := protocols.Shape(spec)
	if err := o.topology.Validate(n); err != nil {
		return nil, invalid(err)
	}
	if o.rng != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if o.probe != nil {
			cfg.Probe = obs.New(*o.probe)
		}
		out, err := protocols.RunOnDES(spec, cfg, o.rng, nil, nil)
		if err != nil {
			return nil, err
		}
		rep := mk(out)
		rep.Metrics = cfg.Probe.Metrics()
		emit(rep)
		return nil, nil
	}
	root := xrand.New(o.seed)
	workers := runpool.Count(o.workers, o.runs)
	arenas := make([]*core.NetArena, workers)
	// One pooled probe per worker, like the arenas; the Metrics snapshot
	// is taken on the worker before the probe moves to its next run.
	probes := make([]*obs.Probe, workers)
	type probedOutcome struct {
		out     protocols.DESOutcome
		metrics *obs.Metrics
	}
	var rel, srel, msgs, rounds, spread stats.Running
	err := runpool.RunOrdered(ctx, o.runs, workers,
		func(w, run int) (probedOutcome, error) {
			if arenas[w] == nil {
				arenas[w] = core.NewNetArena()
			}
			runCfg := cfg
			if o.probe != nil {
				if probes[w] == nil {
					probes[w] = obs.New(*o.probe)
				}
				runCfg.Probe = probes[w]
			}
			out, err := protocols.RunOnDES(spec, runCfg, root.Split(uint64(run)), nil, arenas[w])
			return probedOutcome{out, runCfg.Probe.Metrics()}, err
		}, func(run int, po probedOutcome) {
			out := po.out
			rep := mk(out)
			rep.Metrics = po.metrics
			rel.Add(rep.Reliability)
			srel.Add(out.SurvivorReliability)
			msgs.Add(float64(rep.MessagesSent))
			// The runtime's round counter, not the report's: lpbcast's
			// legacy report shape carries no Rounds field, but its runtime
			// still ticks rounds to quiescence.
			rounds.Add(float64(out.Rounds))
			spread.Add(rep.SpreadMs)
			emit(rep)
		})
	if err != nil {
		return nil, err
	}
	if !o.many {
		return nil, nil
	}
	return &ProtocolSweep{
		Protocol:            spec.Protocol(),
		Runs:                rel.N(),
		Reliability:         momentsOf(rel),
		SurvivorReliability: momentsOf(srel),
		Messages:            momentsOf(msgs),
		Rounds:              momentsOf(rounds),
		SpreadMs:            momentsOf(spread),
	}, nil
}
