package gossipkit

import (
	"context"

	"gossipkit/internal/protocols"
	"gossipkit/internal/runpool"
	"gossipkit/internal/xrand"
)

// The protocol-comparison layer, newly exported: the baseline dissemination
// protocols the paper positions itself against (§2 Related Work), each as
// an Engine so they compose with Run/RunMany, cancellation, and observers
// exactly like the paper's own algorithm.

// PbcastParams configures the Pbcast round-based baseline (Bimodal
// Multicast, Birman et al.).
type PbcastParams = protocols.PbcastParams

// LpbcastParams configures the lpbcast bounded-buffer baseline (Eugster et
// al.).
type LpbcastParams = protocols.LpbcastParams

// AntiEntropyParams configures the classic anti-entropy epidemic (Demers
// et al.).
type AntiEntropyParams = protocols.AntiEntropyParams

// AntiEntropyMode selects the anti-entropy exchange direction.
type AntiEntropyMode = protocols.Mode

// Anti-entropy exchange directions.
const (
	Push     = protocols.Push
	Pull     = protocols.Pull
	PushPull = protocols.PushPull
)

// RDGParams configures the Route-Driven-Gossip baseline (Luo, Eugster &
// Hubaux).
type RDGParams = protocols.RDGParams

// LRGParams configures the local-retransmission gossip baseline (Jia et
// al.).
type LRGParams = protocols.LRGParams

// FloodingParams configures the best-effort flooding baseline.
type FloodingParams = protocols.FloodingParams

// ProtocolResult is the common outcome report of the protocol baselines.
type ProtocolResult = protocols.Result

// LpbcastResult reports lpbcast's per-event delivery.
type LpbcastResult = protocols.LpbcastResult

// AntiEntropyResult extends ProtocolResult with the per-round infection
// curve.
type AntiEntropyResult = protocols.AntiEntropyResult

// RDGResult extends ProtocolResult with recovery accounting.
type RDGResult = protocols.RDGResult

// Pbcast is the engine for the round-based anti-entropy baseline: every
// member holding the message gossips every round, removing the single-shot
// die-out failure mode at the cost of more messages. Report.Detail is the
// per-run ProtocolResult.
type Pbcast struct{ Params PbcastParams }

// Name implements Engine.
func (Pbcast) Name() string { return "pbcast" }

func (s Pbcast) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	if err := s.Params.Validate(); err != nil {
		return nil, invalid(err)
	}
	return protocolSweep(ctx, o, emit, func(r *RNG) (Report, error) {
		res, err := protocols.RunPbcast(s.Params, r)
		return protocolReport(res), err
	})
}

// Lpbcast is the engine for the bounded-buffer lpbcast baseline: gossip
// over SCAMP partial views with event buffers that age out under load.
// Report.Reliability is the mean per-event delivery; Report.Detail is the
// per-run LpbcastResult (whose MinReliability shows buffer pressure
// first).
type Lpbcast struct{ Params LpbcastParams }

// Name implements Engine.
func (Lpbcast) Name() string { return "lpbcast" }

func (s Lpbcast) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	if err := s.Params.Validate(); err != nil {
		return nil, invalid(err)
	}
	return protocolSweep(ctx, o, emit, func(r *RNG) (Report, error) {
		res, err := protocols.RunLpbcast(s.Params, r)
		return Report{
			Reliability:  res.MeanReliability,
			AliveCount:   res.AliveCount,
			MessagesSent: res.MessagesSent,
			Detail:       res,
		}, err
	})
}

// AntiEntropy is the engine for the classic push/pull anti-entropy
// epidemic: each round every alive member contacts one random peer and
// exchanges state per Mode. Report.Detail is the per-run
// AntiEntropyResult, including the infection curve.
type AntiEntropy struct{ Params AntiEntropyParams }

// Name implements Engine.
func (AntiEntropy) Name() string { return "anti-entropy" }

func (s AntiEntropy) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	if err := s.Params.Validate(); err != nil {
		return nil, invalid(err)
	}
	return protocolSweep(ctx, o, emit, func(r *RNG) (Report, error) {
		res, err := protocols.RunAntiEntropy(s.Params, r)
		rep := protocolReport(res.Result)
		rep.Detail = res
		return rep, err
	})
}

// RDG is the engine for the Route-Driven-Gossip baseline: push gossip of
// payloads and packet-id digests over partial views, then NACK-driven pull
// recovery. Report.Detail is the per-run RDGResult.
type RDG struct{ Params RDGParams }

// Name implements Engine.
func (RDG) Name() string { return "rdg" }

func (s RDG) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	if err := s.Params.Validate(); err != nil {
		return nil, invalid(err)
	}
	return protocolSweep(ctx, o, emit, func(r *RNG) (Report, error) {
		res, err := protocols.RunRDG(s.Params, r)
		rep := protocolReport(res.Result)
		rep.Detail = res
		return rep, err
	})
}

// LRG is the engine for local-retransmission gossip: probabilistic
// flooding over a bounded-degree overlay plus NACK-style local repair
// rounds. Report.Detail is the per-run ProtocolResult.
type LRG struct{ Params LRGParams }

// Name implements Engine.
func (LRG) Name() string { return "lrg" }

func (s LRG) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	if err := s.Params.Validate(); err != nil {
		return nil, invalid(err)
	}
	return protocolSweep(ctx, o, emit, func(r *RNG) (Report, error) {
		res, err := protocols.RunLRG(s.Params, r)
		return protocolReport(res), err
	})
}

// Flooding is the engine for the best-effort flooding baseline: forward to
// everyone on first receipt — maximal reliability at Θ(n²) message cost,
// the upper envelope the gossip protocols trade against. Report.Detail is
// the per-run ProtocolResult.
type Flooding struct{ Params FloodingParams }

// Name implements Engine.
func (Flooding) Name() string { return "flooding" }

func (s Flooding) run(ctx context.Context, o *runOptions, emit func(Report)) (any, error) {
	if err := s.Params.Validate(); err != nil {
		return nil, invalid(err)
	}
	return protocolSweep(ctx, o, emit, func(r *RNG) (Report, error) {
		res, err := protocols.RunFlooding(s.Params, r)
		return protocolReport(res), err
	})
}

func protocolReport(res ProtocolResult) Report {
	return Report{
		Reliability:  res.Reliability,
		Delivered:    res.Delivered,
		AliveCount:   res.AliveCount,
		MessagesSent: res.MessagesSent,
		Rounds:       res.Rounds,
		Detail:       res,
	}
}

// protocolSweep is the shared replication driver of the protocol engines:
// per-run RNG streams split from the base seed, worker pool, ordered
// emission; a WithRNG single run consumes the caller's stream directly.
func protocolSweep(ctx context.Context, o *runOptions, emit func(Report), one func(r *RNG) (Report, error)) (any, error) {
	if o.rng != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rep, err := one(o.rng)
		if err != nil {
			return nil, err
		}
		emit(rep)
		return nil, nil
	}
	root := xrand.New(o.seed)
	err := runpool.RunOrdered(ctx, o.runs, runpool.Count(o.workers, o.runs),
		func(w, run int) (Report, error) {
			return one(root.Split(uint64(run)))
		}, func(run int, rep Report) { emit(rep) })
	return nil, err
}
