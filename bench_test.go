// Benchmarks regenerating every evaluation artifact of the paper (it has
// figures only, no numbered tables): Figs. 2–7, plus the ablation studies
// from DESIGN.md. Each benchmark times one full regeneration of the
// corresponding figure at a reduced replication scale (benchScale) so the
// whole suite stays tractable; cmd/experiments -all -scale 1.0 produces the
// full-scale artifacts recorded in EXPERIMENTS.md.
package gossipkit

import (
	"fmt"
	"testing"

	"gossipkit/internal/experiment"
)

// benchScale trades replication count for benchmark runtime; the workload
// shape (group sizes, sweeps) is identical to the paper's.
const benchScale = 0.25

func benchFigure(b *testing.B, id string) {
	b.Helper()
	e, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cfg := experiment.Config{Seed: uint64(i + 1), Scale: benchScale}
		fig, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig2MeanFanout regenerates Fig. 2: mean fanout vs required
// reliability for q in {0.2..1.0} (Eq. 12, analytic).
func BenchmarkFig2MeanFanout(b *testing.B) { benchFigure(b, "fig2") }

// BenchmarkFig3MinExecutions regenerates Fig. 3: minimum executions vs
// reliability for p_s = 0.999 (Eq. 6, analytic).
func BenchmarkFig3MinExecutions(b *testing.B) { benchFigure(b, "fig3") }

// BenchmarkFig4Reliability1000 regenerates Figs. 4a/4b: simulated vs
// analytic reliability across the fanout sweep at n = 1000.
func BenchmarkFig4Reliability1000(b *testing.B) {
	for _, id := range []string{"fig4a", "fig4b"} {
		b.Run(id, func(b *testing.B) { benchFigure(b, id) })
	}
}

// BenchmarkFig5Reliability5000 regenerates Figs. 5a/5b at n = 5000.
func BenchmarkFig5Reliability5000(b *testing.B) {
	for _, id := range []string{"fig5a", "fig5b"} {
		b.Run(id, func(b *testing.B) { benchFigure(b, id) })
	}
}

// BenchmarkFig6SuccessDistribution regenerates Fig. 6: the receipt-count
// distribution at {f=4.0, q=0.9}, n=2000, 20 executions.
func BenchmarkFig6SuccessDistribution(b *testing.B) { benchFigure(b, "fig6") }

// BenchmarkFig7SuccessDistribution regenerates Fig. 7 at {f=6.0, q=0.6}.
func BenchmarkFig7SuccessDistribution(b *testing.B) { benchFigure(b, "fig7") }

// BenchmarkAblations times the six extension studies.
func BenchmarkAblations(b *testing.B) {
	for _, id := range []string{
		"ablation-fanout-shape",
		"ablation-critical-point",
		"ablation-failure-mask",
		"ablation-finite-size",
		"ablation-partial-view",
		"ablation-reach-vs-giant",
		"ablation-message-loss",
		"ablation-epidemic-curve",
		"ablation-protocol-comparison",
	} {
		b.Run(id, func(b *testing.B) { benchFigure(b, id) })
	}
}

// BenchmarkScenarioSweep measures the scenario engine's sweep throughput —
// fault-injection executions per second across the bundled campaign suite —
// so future PRs can track runner speed. The custom scenario-runs/sec metric
// is the headline number; it scales with worker count on multicore hosts.
func BenchmarkScenarioSweep(b *testing.B) {
	suite := DefaultScenarioSuite()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := ScenarioSweepConfig{
				Run: ScenarioRunConfig{
					Params:            Params{N: 500, Fanout: Poisson(5), AliveRatio: 1},
					PartialViewCopies: 2,
				},
				Seeds:   4,
				Workers: workers,
			}
			cells := len(suite) * cfg.Seeds
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.BaseSeed = uint64(i + 1)
				res, err := SweepScenarios(suite, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Scenarios) != len(suite) {
					b.Fatal("incomplete sweep")
				}
			}
			b.ReportMetric(float64(cells*b.N)/b.Elapsed().Seconds(), "scenario-runs/sec")
		})
	}
}

// BenchmarkEndToEndMulticast measures one full execution of the general
// gossiping algorithm (the paper's inner loop) at the paper's group sizes.
func BenchmarkEndToEndMulticast(b *testing.B) {
	for _, n := range []int{1000, 2000, 5000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := Params{N: n, Fanout: Poisson(4), AliveRatio: 0.9}
			r := NewRNG(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Execute(p, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
